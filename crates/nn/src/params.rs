//! Persistent parameter storage shared across tapes.
//!
//! A model owns a [`ParamStore`]; every forward pass binds each parameter
//! onto the fresh tape (as a gradient-requiring leaf) via
//! [`ParamStore::bind`], and after `backward` the optimizer reads the
//! gradients back through the recorded bindings.

use crate::tape::{Tape, Var};
use ged_linalg::Matrix;

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParamId(pub(crate) usize);

/// Owns the trainable matrices of a model.
#[derive(Default)]
pub struct ParamStore {
    values: Vec<Matrix>,
    names: Vec<String>,
}

/// The tape bindings of every parameter for one forward pass.
pub struct Bindings {
    vars: Vec<Var>,
}

impl ParamStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter with an initial value.
    pub fn register(&mut self, name: &str, value: Matrix) -> ParamId {
        self.values.push(value);
        self.names.push(name.to_string());
        ParamId(self.values.len() - 1)
    }

    /// Number of parameters (tensors).
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar parameters.
    #[must_use]
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    /// Current value of a parameter.
    #[must_use]
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable value of a parameter (used by optimizers and tests).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// Name of a parameter.
    #[must_use]
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Binds every parameter onto `tape` as gradient-requiring leaves.
    #[must_use]
    pub fn bind(&self, tape: &Tape) -> Bindings {
        let vars = self
            .values
            .iter()
            .map(|v| tape.leaf(v.clone(), true))
            .collect();
        Bindings { vars }
    }

    /// Reads the gradient of every parameter from a backward-completed tape.
    #[must_use]
    pub fn gradients(&self, tape: &Tape, bindings: &Bindings) -> Vec<Matrix> {
        bindings.vars.iter().map(|&v| tape.grad(v)).collect()
    }

    /// Raw access for optimizers: `(values, count)`.
    pub(crate) fn values_mut(&mut self) -> &mut [Matrix] {
        &mut self.values
    }
}

impl Bindings {
    /// The tape variable bound to `id`.
    #[must_use]
    pub fn var(&self, id: ParamId) -> Var {
        self.vars[id.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_bind_and_read_back() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_vec(1, 2, vec![2.0, 3.0]));
        assert_eq!(store.len(), 1);
        assert_eq!(store.num_scalars(), 2);
        assert_eq!(store.name(w), "w");

        let tape = Tape::new();
        let b = store.bind(&tape);
        let x = tape.constant(Matrix::from_vec(2, 1, vec![5.0, 7.0]));
        let y = tape.matmul(b.var(w), x); // 2*5 + 3*7 = 31
        assert!((tape.scalar_value(y) - 31.0).abs() < 1e-12);
        tape.backward(y);
        let grads = store.gradients(&tape, &b);
        assert_eq!(grads[0].as_slice(), &[5.0, 7.0]);
    }
}

// ----- checkpointing ---------------------------------------------------

/// A serializable snapshot of every parameter (name, shape, data).
///
/// Trained models can be checkpointed to disk and restored later;
/// restoration is by-name so it also guards against architecture drift.
#[derive(Debug)]
pub struct Checkpoint {
    entries: Vec<(String, usize, usize, Vec<f64>)>,
}

impl ParamStore {
    /// Captures a checkpoint of all current parameter values.
    #[must_use]
    pub fn checkpoint(&self) -> Checkpoint {
        let entries = self
            .values
            .iter()
            .zip(&self.names)
            .map(|(m, n)| (n.clone(), m.rows(), m.cols(), m.as_slice().to_vec()))
            .collect();
        Checkpoint { entries }
    }

    /// Restores parameter values from a checkpoint.
    ///
    /// # Errors
    /// Fails if the checkpoint's names or shapes do not match this store.
    pub fn restore(&mut self, ckpt: &Checkpoint) -> Result<(), String> {
        if ckpt.entries.len() != self.values.len() {
            return Err(format!(
                "checkpoint has {} tensors, store has {}",
                ckpt.entries.len(),
                self.values.len()
            ));
        }
        for (i, (name, rows, cols, data)) in ckpt.entries.iter().enumerate() {
            if &self.names[i] != name {
                return Err(format!(
                    "tensor #{i}: name '{}' vs '{}'",
                    self.names[i], name
                ));
            }
            if self.values[i].shape() != (*rows, *cols) {
                return Err(format!(
                    "tensor '{name}': shape {:?} vs ({rows},{cols})",
                    self.values[i].shape()
                ));
            }
            self.values[i] = Matrix::from_vec(*rows, *cols, data.clone());
        }
        Ok(())
    }
}

impl Checkpoint {
    /// Serializes to a simple line-oriented text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, rows, cols, data) in &self.entries {
            out.push_str(&format!("{name} {rows} {cols}"));
            for v in data {
                out.push_str(&format!(" {v:e}"));
            }
            out.push('\n');
        }
        out
    }

    /// Parses the text format produced by [`Checkpoint::to_text`].
    ///
    /// # Errors
    /// Reports the first malformed line.
    pub fn from_text(s: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (lineno, line) in s.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let mut it = line.split_whitespace();
            let name = it
                .next()
                .ok_or_else(|| format!("line {lineno}: missing name"))?;
            let rows: usize = it
                .next()
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| format!("line {lineno}: bad rows"))?;
            let cols: usize = it
                .next()
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| format!("line {lineno}: bad cols"))?;
            let data: Vec<f64> = it
                .map(str::parse)
                .collect::<Result<_, _>>()
                .map_err(|e| format!("line {lineno}: bad value: {e}"))?;
            if data.len() != rows * cols {
                return Err(format!(
                    "line {lineno}: expected {} values, got {}",
                    rows * cols,
                    data.len()
                ));
            }
            entries.push((name.to_string(), rows, cols, data));
        }
        Ok(Checkpoint { entries })
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;

    fn sample_store() -> ParamStore {
        let mut s = ParamStore::new();
        s.register("a", Matrix::from_vec(1, 2, vec![1.5, -2.25]));
        s.register("b", Matrix::from_vec(2, 2, vec![0.0, 1e-9, 3.0, -4.0]));
        s
    }

    #[test]
    fn roundtrip_exact() {
        let store = sample_store();
        let text = store.checkpoint().to_text();
        let ckpt = Checkpoint::from_text(&text).unwrap();
        let mut other = sample_store();
        *other.value_mut(ParamId(0)) = Matrix::zeros(1, 2);
        other.restore(&ckpt).unwrap();
        assert_eq!(other.value(ParamId(0)).as_slice(), &[1.5, -2.25]);
        assert_eq!(other.value(ParamId(1)).as_slice(), &[0.0, 1e-9, 3.0, -4.0]);
    }

    #[test]
    fn restore_rejects_mismatches() {
        let store = sample_store();
        let ckpt = store.checkpoint();
        let mut wrong_names = ParamStore::new();
        wrong_names.register("x", Matrix::zeros(1, 2));
        wrong_names.register("b", Matrix::zeros(2, 2));
        assert!(wrong_names.restore(&ckpt).unwrap_err().contains("name"));

        let mut wrong_shape = ParamStore::new();
        wrong_shape.register("a", Matrix::zeros(2, 1));
        wrong_shape.register("b", Matrix::zeros(2, 2));
        assert!(wrong_shape.restore(&ckpt).unwrap_err().contains("shape"));

        let mut wrong_count = ParamStore::new();
        wrong_count.register("a", Matrix::zeros(1, 2));
        assert!(wrong_count.restore(&ckpt).unwrap_err().contains("tensors"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Checkpoint::from_text("a 2 2 1.0")
            .unwrap_err()
            .contains("expected"));
        assert!(Checkpoint::from_text("a x 2 1.0")
            .unwrap_err()
            .contains("bad rows"));
    }
}
