//! A small tape-based reverse-mode autodiff engine and the neural layers
//! used by GEDIOT and the neural baselines.
//!
//! Design notes:
//!
//! * [`tape::Tape`] records an enum-op computation graph over dense
//!   [`ged_linalg::Matrix`] values; no closures, no lifetimes in user code —
//!   a [`tape::Var`] is just an index. A fresh tape is built per forward
//!   pass (define-by-run), matching how the per-pair GED models work.
//! * Every operation's gradient is validated against central finite
//!   differences in this crate's test suite (Invariant E of DESIGN.md).
//! * [`params::ParamStore`] owns the trainable matrices across tapes;
//!   [`optim::Adam`] consumes gradients read back from a tape.
//! * [`layers`] builds the paper's building blocks on top: `Linear`, `Mlp`,
//!   GIN convolutions (Eq. 8), attention pooling (Eq. 13), and the neural
//!   tensor network (Eq. 14).

#![warn(missing_docs)]

pub mod init;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod params;
pub mod tape;

pub use layers::{AttentionPool, GinLayer, Linear, Mlp, Ntn};
pub use optim::Adam;
pub use params::{ParamId, ParamStore};
pub use tape::{Tape, Var};
