//! Loss functions (Section 4.4 of the paper).

use crate::tape::{Tape, Var};
use ged_linalg::Matrix;

/// Clamp bound keeping `ln` finite inside the BCE.
const BCE_EPS: f64 = 1e-7;

/// Mean squared error between a `1x1` prediction and a scalar target —
/// the paper's value loss `L_v = (score - nGED*)²`.
pub fn mse_scalar(tape: &Tape, pred: Var, target: f64) -> Var {
    let t = tape.scalar(target);
    let diff = tape.sub(pred, t);
    tape.mul(diff, diff)
}

/// Binary cross-entropy between a predicted coupling `pred ∈ (0,1)^{n1 x n2}`
/// and the 0/1 ground-truth matching, averaged over all `n1*n2` entries —
/// the paper's matching loss `L_m = BCE(π*|π̂) / (n1 n2)`.
///
/// # Panics
/// Panics if shapes mismatch.
pub fn bce_matrix(tape: &Tape, pred: Var, target: &Matrix) -> Var {
    let (n1, n2) = tape.shape(pred);
    assert_eq!(target.shape(), (n1, n2), "BCE target shape");
    let t = tape.constant(target.clone());
    let one = tape.constant(Matrix::filled(n1, n2, 1.0));

    let p = tape.clamp(pred, BCE_EPS, 1.0 - BCE_EPS);
    let log_p = tape.ln(p);
    let one_minus_p = tape.sub(one, p);
    let log_1p = tape.ln(one_minus_p);
    let one_minus_t = tape.sub(one, t);

    let pos = tape.mul(t, log_p);
    let neg = tape.mul(one_minus_t, log_1p);
    let total = tape.add(pos, neg);
    let sum = tape.sum(total);
    tape.scale(sum, -1.0 / (n1 * n2) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_basics() {
        let tape = Tape::new();
        let p = tape.scalar(0.8);
        let l = mse_scalar(&tape, p, 0.5);
        assert!((tape.scalar_value(l) - 0.09).abs() < 1e-12);
    }

    #[test]
    fn bce_is_minimal_at_target() {
        let target = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let eval = |p: Vec<f64>| {
            let tape = Tape::new();
            let pred = tape.constant(Matrix::from_vec(1, 2, p));
            tape.scalar_value(bce_matrix(&tape, pred, &target))
        };
        let at_target = eval(vec![0.999_999, 0.000_001]);
        let off = eval(vec![0.5, 0.5]);
        let wrong = eval(vec![0.01, 0.99]);
        assert!(at_target < off && off < wrong);
        assert!(at_target < 1e-4);
    }

    #[test]
    fn bce_gradient_direction() {
        // Gradient must push predictions toward the target.
        let target = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let tape = Tape::new();
        let pred = tape.leaf(Matrix::from_vec(1, 2, vec![0.5, 0.5]), true);
        let l = bce_matrix(&tape, pred, &target);
        tape.backward(l);
        let g = tape.grad(pred);
        assert!(g[(0, 0)] < 0.0, "increase p where target=1");
        assert!(g[(0, 1)] > 0.0, "decrease p where target=0");
    }

    #[test]
    fn bce_stays_finite_at_extremes() {
        let target = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let tape = Tape::new();
        let pred = tape.constant(Matrix::from_vec(1, 2, vec![0.0, 1.0]));
        let l = bce_matrix(&tape, pred, &target);
        assert!(tape.scalar_value(l).is_finite());
    }
}
