//! Optimizers.
//!
//! The paper trains with Adam (learning rate `1e-3`, weight decay `5e-4`,
//! Appendix F.2); a plain SGD is included for tests and ablations.

use crate::params::ParamStore;
use ged_linalg::Matrix;

/// The Adam optimizer with (decoupled-style additive) L2 weight decay.
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    weight_decay: f64,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Creates Adam with the paper's defaults (`lr = 1e-3`,
    /// `weight_decay = 5e-4`).
    #[must_use]
    pub fn new(lr: f64, weight_decay: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Current learning rate.
    #[must_use]
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }

    /// Sets the learning rate (for schedules).
    pub fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }

    /// Applies one update step given per-parameter gradients.
    ///
    /// # Panics
    /// Panics if `grads.len()` differs from the number of parameters.
    pub fn step(&mut self, store: &mut ParamStore, grads: &[Matrix]) {
        let params = store.values_mut();
        assert_eq!(params.len(), grads.len(), "gradient count mismatch");
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Matrix::zeros(p.rows(), p.cols()))
                .collect();
            self.v = params
                .iter()
                .map(|p| Matrix::zeros(p.rows(), p.cols()))
                .collect();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);

        for ((p, g), (m, v)) in params
            .iter_mut()
            .zip(grads)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            assert_eq!(p.shape(), g.shape(), "gradient shape mismatch");
            for i in 0..p.len() {
                let grad = g.as_slice()[i] + self.weight_decay * p.as_slice()[i];
                let mi = self.beta1 * m.as_slice()[i] + (1.0 - self.beta1) * grad;
                let vi = self.beta2 * v.as_slice()[i] + (1.0 - self.beta2) * grad * grad;
                m.as_mut_slice()[i] = mi;
                v.as_mut_slice()[i] = vi;
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                p.as_mut_slice()[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Plain stochastic gradient descent.
pub struct Sgd {
    lr: f64,
}

impl Sgd {
    /// Creates SGD with the given learning rate.
    #[must_use]
    pub fn new(lr: f64) -> Self {
        Sgd { lr }
    }

    /// Applies one descent step.
    ///
    /// # Panics
    /// Panics if `grads.len()` differs from the number of parameters.
    pub fn step(&mut self, store: &mut ParamStore, grads: &[Matrix]) {
        let params = store.values_mut();
        assert_eq!(params.len(), grads.len());
        for (p, g) in params.iter_mut().zip(grads) {
            p.add_scaled_assign(g, -self.lr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimizing (w - 3)² must converge to w = 3 for both optimizers.
    fn run<F: FnMut(&mut ParamStore, &[Matrix])>(mut apply: F) -> f64 {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_vec(1, 1, vec![0.0]));
        for _ in 0..2000 {
            let tape = Tape::new();
            let b = store.bind(&tape);
            let target = tape.scalar(3.0);
            let diff = tape.sub(b.var(w), target);
            let loss = tape.mul(diff, diff);
            tape.backward(loss);
            let grads = store.gradients(&tape, &b);
            apply(&mut store, &grads);
        }
        store.value(w).as_slice()[0]
    }

    #[test]
    fn adam_converges() {
        let mut opt = Adam::new(0.05, 0.0);
        let w = run(|s, g| opt.step(s, g));
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_converges() {
        let mut opt = Sgd::new(0.05);
        let w = run(|s, g| opt.step(s, g));
        assert!((w - 3.0).abs() < 1e-6, "w = {w}");
    }

    #[test]
    fn weight_decay_shrinks_solution() {
        let mut opt = Adam::new(0.05, 0.5);
        let w = run(|s, g| opt.step(s, g));
        assert!(w < 3.0 && w > 1.0, "decayed w = {w}");
    }
}
