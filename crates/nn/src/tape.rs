//! The reverse-mode autodiff tape.
//!
//! A [`Tape`] is a growing list of nodes; each node stores its operation,
//! operand indices and forward value. [`Tape::backward`] seeds the gradient
//! of a scalar (`1x1`) output and walks the tape in reverse, accumulating
//! gradients into every node that requires them.

use ged_linalg::Matrix;
use std::cell::RefCell;

/// Handle to a value on the tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

#[derive(Clone, Debug)]
enum Op {
    /// Leaf value (input or parameter).
    Leaf,
    MatMul(usize, usize),
    Transpose(usize),
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Div(usize, usize),
    Scale(usize, f64),
    // The added constant does not appear in the backward pass (d/dx = 1).
    AddConst(usize),
    Exp(usize),
    Ln(usize),
    Tanh(usize),
    Sigmoid(usize),
    Relu(usize),
    Softplus(usize),
    Sum(usize),
    Mean(usize),
    Clamp(usize, f64, f64),
    ConcatCols(usize, usize),
    AppendZeroRow(usize),
    RemoveLastRow(usize),
    /// `c_ij = a_ij * r_j` where `r` is `1 x cols`.
    MulBroadcastRow(usize, usize),
    /// `c_ij = a_ij * col_i` where `col` is `rows x 1`.
    MulBroadcastCol(usize, usize),
    /// `c_ij = a_ij + r_j` where `r` is `1 x cols`.
    AddBroadcastRow(usize, usize),
    /// `c = a * s` where `s` is a `1x1` tape value.
    MulScalarVar(usize, usize),
    /// `c = a / s` where `s` is a `1x1` tape value.
    DivScalarVar(usize, usize),
}

struct Node {
    op: Op,
    value: Matrix,
    grad: Option<Matrix>,
    requires_grad: bool,
}

/// A define-by-run computation graph.
#[derive(Default)]
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
}

impl Tape {
    /// Creates an empty tape.
    #[must_use]
    pub fn new() -> Self {
        Tape {
            nodes: RefCell::new(Vec::new()),
        }
    }

    fn push(&self, op: Op, value: Matrix, requires_grad: bool) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node {
            op,
            value,
            grad: None,
            requires_grad,
        });
        Var(nodes.len() - 1)
    }

    fn push_unary(&self, a: Var, op: Op, value: Matrix) -> Var {
        let rg = self.nodes.borrow()[a.0].requires_grad;
        self.push(op, value, rg)
    }

    fn push_binary(&self, a: Var, b: Var, op: Op, value: Matrix) -> Var {
        let nodes = self.nodes.borrow();
        let rg = nodes[a.0].requires_grad || nodes[b.0].requires_grad;
        drop(nodes);
        self.push(op, value, rg)
    }

    /// Registers a leaf value. `requires_grad` marks parameters.
    pub fn leaf(&self, value: Matrix, requires_grad: bool) -> Var {
        self.push(Op::Leaf, value, requires_grad)
    }

    /// Registers a constant (no gradient).
    pub fn constant(&self, value: Matrix) -> Var {
        self.leaf(value, false)
    }

    /// Registers a `1x1` constant scalar.
    pub fn scalar(&self, value: f64) -> Var {
        self.constant(Matrix::from_vec(1, 1, vec![value]))
    }

    /// The current value of `v` (cloned).
    #[must_use]
    pub fn value(&self, v: Var) -> Matrix {
        self.nodes.borrow()[v.0].value.clone()
    }

    /// The scalar value of a `1x1` variable.
    ///
    /// # Panics
    /// Panics if `v` is not `1x1`.
    #[must_use]
    pub fn scalar_value(&self, v: Var) -> f64 {
        let nodes = self.nodes.borrow();
        let m = &nodes[v.0].value;
        assert_eq!(m.shape(), (1, 1), "scalar_value needs a 1x1 value");
        m.as_slice()[0]
    }

    /// The shape of `v`.
    #[must_use]
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes.borrow()[v.0].value.shape()
    }

    /// The accumulated gradient of `v` (zeros if it never received one).
    #[must_use]
    pub fn grad(&self, v: Var) -> Matrix {
        let nodes = self.nodes.borrow();
        let n = &nodes[v.0];
        n.grad.clone().unwrap_or_else(|| {
            let (r, c) = n.value.shape();
            Matrix::zeros(r, c)
        })
    }

    // ----- ops -------------------------------------------------------

    /// Matrix product.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            nodes[a.0].value.matmul(&nodes[b.0].value)
        };
        self.push_binary(a, b, Op::MatMul(a.0, b.0), v)
    }

    /// Transpose.
    pub fn transpose(&self, a: Var) -> Var {
        let v = self.nodes.borrow()[a.0].value.transpose();
        self.push_unary(a, Op::Transpose(a.0), v)
    }

    /// Element-wise sum.
    pub fn add(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            nodes[a.0].value.add(&nodes[b.0].value)
        };
        self.push_binary(a, b, Op::Add(a.0, b.0), v)
    }

    /// Element-wise difference.
    pub fn sub(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            nodes[a.0].value.sub(&nodes[b.0].value)
        };
        self.push_binary(a, b, Op::Sub(a.0, b.0), v)
    }

    /// Hadamard product.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            nodes[a.0].value.hadamard(&nodes[b.0].value)
        };
        self.push_binary(a, b, Op::Mul(a.0, b.0), v)
    }

    /// Element-wise division.
    pub fn div(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            nodes[a.0].value.zip_map(&nodes[b.0].value, |x, y| x / y)
        };
        self.push_binary(a, b, Op::Div(a.0, b.0), v)
    }

    /// Multiplication by a compile-time scalar.
    pub fn scale(&self, a: Var, s: f64) -> Var {
        let v = self.nodes.borrow()[a.0].value.scale(s);
        self.push_unary(a, Op::Scale(a.0, s), v)
    }

    /// Addition of a compile-time scalar to every element.
    pub fn add_const(&self, a: Var, s: f64) -> Var {
        let v = self.nodes.borrow()[a.0].value.map(|x| x + s);
        self.push_unary(a, Op::AddConst(a.0), v)
    }

    /// Element-wise `exp`.
    pub fn exp(&self, a: Var) -> Var {
        let v = self.nodes.borrow()[a.0].value.map(f64::exp);
        self.push_unary(a, Op::Exp(a.0), v)
    }

    /// Element-wise natural log.
    pub fn ln(&self, a: Var) -> Var {
        let v = self.nodes.borrow()[a.0].value.map(f64::ln);
        self.push_unary(a, Op::Ln(a.0), v)
    }

    /// Element-wise `tanh`.
    pub fn tanh(&self, a: Var) -> Var {
        let v = self.nodes.borrow()[a.0].value.map(f64::tanh);
        self.push_unary(a, Op::Tanh(a.0), v)
    }

    /// Element-wise logistic sigmoid.
    pub fn sigmoid(&self, a: Var) -> Var {
        let v = self.nodes.borrow()[a.0]
            .value
            .map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push_unary(a, Op::Sigmoid(a.0), v)
    }

    /// Element-wise ReLU.
    pub fn relu(&self, a: Var) -> Var {
        let v = self.nodes.borrow()[a.0].value.map(|x| x.max(0.0));
        self.push_unary(a, Op::Relu(a.0), v)
    }

    /// Element-wise softplus `ln(1 + e^x)` (used to keep the learnable
    /// Sinkhorn ε positive).
    pub fn softplus(&self, a: Var) -> Var {
        let v = self.nodes.borrow()[a.0].value.map(|x| {
            // Numerically stable: max(x,0) + ln(1+exp(-|x|)).
            x.max(0.0) + (-x.abs()).exp().ln_1p()
        });
        self.push_unary(a, Op::Softplus(a.0), v)
    }

    /// Sum of all elements (`1x1` result).
    pub fn sum(&self, a: Var) -> Var {
        let v = Matrix::from_vec(1, 1, vec![self.nodes.borrow()[a.0].value.sum()]);
        self.push_unary(a, Op::Sum(a.0), v)
    }

    /// Mean of all elements (`1x1` result).
    pub fn mean(&self, a: Var) -> Var {
        let nodes = self.nodes.borrow();
        let m = &nodes[a.0].value;
        let v = Matrix::from_vec(1, 1, vec![m.sum() / m.len() as f64]);
        drop(nodes);
        self.push_unary(a, Op::Mean(a.0), v)
    }

    /// Element-wise clamp into `[lo, hi]` (gradient passes through inside
    /// the interval, zero outside).
    pub fn clamp(&self, a: Var, lo: f64, hi: f64) -> Var {
        let v = self.nodes.borrow()[a.0].value.map(|x| x.clamp(lo, hi));
        self.push_unary(a, Op::Clamp(a.0, lo, hi), v)
    }

    /// Horizontal concatenation `[a | b]`.
    pub fn concat_cols(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            nodes[a.0].value.hcat(&nodes[b.0].value)
        };
        self.push_binary(a, b, Op::ConcatCols(a.0, b.0), v)
    }

    /// Appends a zero row (the dummy supernode row of Section 4.2).
    pub fn append_zero_row(&self, a: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let cols = nodes[a.0].value.cols();
            nodes[a.0].value.with_appended_row(&vec![0.0; cols])
        };
        self.push_unary(a, Op::AppendZeroRow(a.0), v)
    }

    /// Removes the last row (drops the dummy supernode from the coupling).
    pub fn remove_last_row(&self, a: Var) -> Var {
        let v = self.nodes.borrow()[a.0].value.without_last_row();
        self.push_unary(a, Op::RemoveLastRow(a.0), v)
    }

    /// `c_ij = a_ij * r_j` with `r` a `1 x cols` row vector.
    ///
    /// # Panics
    /// Panics if `r` is not `1 x a.cols`.
    pub fn mul_broadcast_row(&self, a: Var, r: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let am = &nodes[a.0].value;
            let rm = &nodes[r.0].value;
            assert_eq!(rm.shape(), (1, am.cols()), "broadcast row shape");
            Matrix::from_fn(am.rows(), am.cols(), |i, j| am[(i, j)] * rm[(0, j)])
        };
        self.push_binary(a, r, Op::MulBroadcastRow(a.0, r.0), v)
    }

    /// `c_ij = a_ij * col_i` with `col` a `rows x 1` column vector.
    ///
    /// # Panics
    /// Panics if `col` is not `a.rows x 1`.
    pub fn mul_broadcast_col(&self, a: Var, col: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let am = &nodes[a.0].value;
            let cm = &nodes[col.0].value;
            assert_eq!(cm.shape(), (am.rows(), 1), "broadcast col shape");
            Matrix::from_fn(am.rows(), am.cols(), |i, j| am[(i, j)] * cm[(i, 0)])
        };
        self.push_binary(a, col, Op::MulBroadcastCol(a.0, col.0), v)
    }

    /// `c_ij = a_ij + r_j` with `r` a `1 x cols` row vector (bias add).
    ///
    /// # Panics
    /// Panics if `r` is not `1 x a.cols`.
    pub fn add_broadcast_row(&self, a: Var, r: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let am = &nodes[a.0].value;
            let rm = &nodes[r.0].value;
            assert_eq!(rm.shape(), (1, am.cols()), "broadcast row shape");
            Matrix::from_fn(am.rows(), am.cols(), |i, j| am[(i, j)] + rm[(0, j)])
        };
        self.push_binary(a, r, Op::AddBroadcastRow(a.0, r.0), v)
    }

    /// `c = a * s` with `s` a `1x1` tape value.
    ///
    /// # Panics
    /// Panics if `s` is not `1x1`.
    pub fn mul_scalar_var(&self, a: Var, s: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let sv = &nodes[s.0].value;
            assert_eq!(sv.shape(), (1, 1), "scalar var must be 1x1");
            nodes[a.0].value.scale(sv.as_slice()[0])
        };
        self.push_binary(a, s, Op::MulScalarVar(a.0, s.0), v)
    }

    /// `c = a / s` with `s` a `1x1` tape value.
    ///
    /// # Panics
    /// Panics if `s` is not `1x1`.
    pub fn div_scalar_var(&self, a: Var, s: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let sv = &nodes[s.0].value;
            assert_eq!(sv.shape(), (1, 1), "scalar var must be 1x1");
            nodes[a.0].value.scale(1.0 / sv.as_slice()[0])
        };
        self.push_binary(a, s, Op::DivScalarVar(a.0, s.0), v)
    }

    /// Frobenius inner product `⟨a, b⟩` as a `1x1` value.
    pub fn dot(&self, a: Var, b: Var) -> Var {
        let prod = self.mul(a, b);
        self.sum(prod)
    }

    // ----- backward --------------------------------------------------

    /// Runs reverse-mode accumulation from the scalar `loss`.
    ///
    /// # Panics
    /// Panics if `loss` is not `1x1`.
    pub fn backward(&self, loss: Var) {
        let mut nodes = self.nodes.borrow_mut();
        assert_eq!(
            nodes[loss.0].value.shape(),
            (1, 1),
            "backward needs a scalar loss"
        );
        for n in nodes.iter_mut() {
            n.grad = None;
        }
        nodes[loss.0].grad = Some(Matrix::from_vec(1, 1, vec![1.0]));

        for idx in (0..nodes.len()).rev() {
            let Some(g) = nodes[idx].grad.clone() else {
                continue;
            };
            if !nodes[idx].requires_grad {
                continue;
            }
            let op = nodes[idx].op.clone();
            let out_val = nodes[idx].value.clone();
            match op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let bv_t = nodes[b].value.transpose();
                    let ga = g.matmul(&bv_t);
                    accumulate(&mut nodes, a, ga);
                    let av_t = nodes[a].value.transpose();
                    let gb = av_t.matmul(&g);
                    accumulate(&mut nodes, b, gb);
                }
                Op::Transpose(a) => accumulate(&mut nodes, a, g.transpose()),
                Op::Add(a, b) => {
                    accumulate(&mut nodes, a, g.clone());
                    accumulate(&mut nodes, b, g);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut nodes, a, g.clone());
                    accumulate(&mut nodes, b, g.scale(-1.0));
                }
                Op::Mul(a, b) => {
                    let ga = g.hadamard(&nodes[b].value);
                    let gb = g.hadamard(&nodes[a].value);
                    accumulate(&mut nodes, a, ga);
                    accumulate(&mut nodes, b, gb);
                }
                Op::Div(a, b) => {
                    let bv = nodes[b].value.clone();
                    let ga = g.zip_map(&bv, |gi, bi| gi / bi);
                    // d/db (a/b) = -a/b² = -c/b
                    let gb = g.hadamard(&out_val).zip_map(&bv, |x, bi| -x / bi);
                    accumulate(&mut nodes, a, ga);
                    accumulate(&mut nodes, b, gb);
                }
                Op::Scale(a, s) => accumulate(&mut nodes, a, g.scale(s)),
                Op::AddConst(a) => accumulate(&mut nodes, a, g),
                Op::Exp(a) => accumulate(&mut nodes, a, g.hadamard(&out_val)),
                Op::Ln(a) => {
                    let av = nodes[a].value.clone();
                    accumulate(&mut nodes, a, g.zip_map(&av, |gi, ai| gi / ai));
                }
                Op::Tanh(a) => {
                    let ga = g.zip_map(&out_val, |gi, t| gi * (1.0 - t * t));
                    accumulate(&mut nodes, a, ga);
                }
                Op::Sigmoid(a) => {
                    let ga = g.zip_map(&out_val, |gi, s| gi * s * (1.0 - s));
                    accumulate(&mut nodes, a, ga);
                }
                Op::Relu(a) => {
                    let av = nodes[a].value.clone();
                    accumulate(
                        &mut nodes,
                        a,
                        g.zip_map(&av, |gi, ai| if ai > 0.0 { gi } else { 0.0 }),
                    );
                }
                Op::Softplus(a) => {
                    let av = nodes[a].value.clone();
                    let ga = g.zip_map(&av, |gi, ai| gi / (1.0 + (-ai).exp()));
                    accumulate(&mut nodes, a, ga);
                }
                Op::Sum(a) => {
                    let (r, c) = nodes[a].value.shape();
                    accumulate(&mut nodes, a, Matrix::filled(r, c, g.as_slice()[0]));
                }
                Op::Mean(a) => {
                    let (r, c) = nodes[a].value.shape();
                    let scale = g.as_slice()[0] / (r * c) as f64;
                    accumulate(&mut nodes, a, Matrix::filled(r, c, scale));
                }
                Op::Clamp(a, lo, hi) => {
                    let av = nodes[a].value.clone();
                    let ga = g.zip_map(&av, |gi, ai| if ai >= lo && ai <= hi { gi } else { 0.0 });
                    accumulate(&mut nodes, a, ga);
                }
                Op::ConcatCols(a, b) => {
                    let ca = nodes[a].value.cols();
                    let (rows, cols) = g.shape();
                    let ga = Matrix::from_fn(rows, ca, |i, j| g[(i, j)]);
                    let gb = Matrix::from_fn(rows, cols - ca, |i, j| g[(i, j + ca)]);
                    accumulate(&mut nodes, a, ga);
                    accumulate(&mut nodes, b, gb);
                }
                Op::AppendZeroRow(a) => accumulate(&mut nodes, a, g.without_last_row()),
                Op::RemoveLastRow(a) => {
                    let cols = g.cols();
                    accumulate(&mut nodes, a, g.with_appended_row(&vec![0.0; cols]));
                }
                Op::MulBroadcastRow(a, r) => {
                    let rv = nodes[r.to_owned()].value.clone();
                    let av = nodes[a].value.clone();
                    let ga = Matrix::from_fn(g.rows(), g.cols(), |i, j| g[(i, j)] * rv[(0, j)]);
                    let mut gr = Matrix::zeros(1, g.cols());
                    for i in 0..g.rows() {
                        for j in 0..g.cols() {
                            gr[(0, j)] += g[(i, j)] * av[(i, j)];
                        }
                    }
                    accumulate(&mut nodes, a, ga);
                    accumulate(&mut nodes, r, gr);
                }
                Op::MulBroadcastCol(a, c) => {
                    let cv = nodes[c].value.clone();
                    let av = nodes[a].value.clone();
                    let ga = Matrix::from_fn(g.rows(), g.cols(), |i, j| g[(i, j)] * cv[(i, 0)]);
                    let mut gc = Matrix::zeros(g.rows(), 1);
                    for i in 0..g.rows() {
                        for j in 0..g.cols() {
                            gc[(i, 0)] += g[(i, j)] * av[(i, j)];
                        }
                    }
                    accumulate(&mut nodes, a, ga);
                    accumulate(&mut nodes, c, gc);
                }
                Op::AddBroadcastRow(a, r) => {
                    let mut gr = Matrix::zeros(1, g.cols());
                    for i in 0..g.rows() {
                        for j in 0..g.cols() {
                            gr[(0, j)] += g[(i, j)];
                        }
                    }
                    accumulate(&mut nodes, a, g);
                    accumulate(&mut nodes, r, gr);
                }
                Op::MulScalarVar(a, s) => {
                    let sv = nodes[s].value.as_slice()[0];
                    let av = nodes[a].value.clone();
                    accumulate(&mut nodes, a, g.scale(sv));
                    let gs = g.hadamard(&av).sum();
                    accumulate(&mut nodes, s, Matrix::from_vec(1, 1, vec![gs]));
                }
                Op::DivScalarVar(a, s) => {
                    let sv = nodes[s].value.as_slice()[0];
                    let av = nodes[a].value.clone();
                    accumulate(&mut nodes, a, g.scale(1.0 / sv));
                    let gs = -g.hadamard(&av).sum() / (sv * sv);
                    accumulate(&mut nodes, s, Matrix::from_vec(1, 1, vec![gs]));
                }
            }
        }
    }

    /// Number of nodes on the tape (diagnostics).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Whether the tape is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }
}

fn accumulate(nodes: &mut [Node], idx: usize, g: Matrix) {
    if !nodes[idx].requires_grad {
        return;
    }
    match &mut nodes[idx].grad {
        Some(existing) => existing.add_scaled_assign(&g, 1.0),
        slot @ None => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Central finite-difference check of `d loss / d input` for a scalar
    /// function `f` rebuilt from scratch at each evaluation.
    fn check_gradient(input: &Matrix, f: impl Fn(&Tape, Var) -> Var, tol: f64) {
        // Analytic gradient.
        let tape = Tape::new();
        let x = tape.leaf(input.clone(), true);
        let loss = f(&tape, x);
        tape.backward(loss);
        let analytic = tape.grad(x);

        // Finite differences.
        let h = 1e-5;
        for r in 0..input.rows() {
            for c in 0..input.cols() {
                let mut plus = input.clone();
                plus[(r, c)] += h;
                let tp = Tape::new();
                let xp = tp.leaf(plus, false);
                let lp = tp.scalar_value(f(&tp, xp));

                let mut minus = input.clone();
                minus[(r, c)] -= h;
                let tm = Tape::new();
                let xm = tm.leaf(minus, false);
                let lm = tm.scalar_value(f(&tm, xm));

                let fd = (lp - lm) / (2.0 * h);
                let an = analytic[(r, c)];
                assert!(
                    (fd - an).abs() < tol * (1.0 + fd.abs()),
                    "grad mismatch at ({r},{c}): fd={fd} analytic={an}"
                );
            }
        }
    }

    fn rand_matrix(r: usize, c: usize, seed: u64) -> Matrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        Matrix::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn grad_matmul() {
        let x = rand_matrix(3, 4, 1);
        check_gradient(
            &x,
            |t, x| {
                let w = t.constant(rand_matrix(4, 2, 2));
                let y = t.matmul(x, w);
                t.sum(y)
            },
            1e-5,
        );
    }

    #[test]
    fn grad_matmul_left_and_right() {
        let x = rand_matrix(2, 3, 3);
        check_gradient(
            &x,
            |t, x| {
                let xt = t.transpose(x); // 3x2
                let y = t.matmul(x, xt); // 2x2, both operands depend on x
                t.sum(y)
            },
            1e-4,
        );
    }

    #[test]
    fn grad_elementwise_chain() {
        let x = rand_matrix(3, 3, 4);
        check_gradient(
            &x,
            |t, x| {
                let a = t.tanh(x);
                let b = t.sigmoid(a);
                let c = t.exp(b);
                let d = t.mul(c, a);
                t.sum(d)
            },
            1e-4,
        );
    }

    #[test]
    fn grad_div_ln() {
        let x = rand_matrix(2, 3, 5).map(|v| v.abs() + 0.5);
        check_gradient(
            &x,
            |t, x| {
                let c = t.constant(Matrix::filled(2, 3, 2.0));
                let d = t.div(c, x);
                let l = t.ln(d);
                t.sum(l)
            },
            1e-4,
        );
    }

    #[test]
    fn grad_relu_softplus_clamp() {
        let x = rand_matrix(3, 3, 6);
        check_gradient(
            &x,
            |t, x| {
                let a = t.relu(x);
                let b = t.softplus(a);
                let c = t.clamp(b, 0.1, 5.0);
                t.mean(c)
            },
            1e-4,
        );
    }

    #[test]
    fn grad_broadcast_ops() {
        let x = rand_matrix(1, 4, 7);
        check_gradient(
            &x,
            |t, x| {
                let a = t.constant(rand_matrix(3, 4, 8));
                let m = t.mul_broadcast_row(a, x);
                let b = t.add_broadcast_row(m, x);
                t.sum(b)
            },
            1e-5,
        );
        let c = rand_matrix(3, 1, 9);
        check_gradient(
            &c,
            |t, c| {
                let a = t.constant(rand_matrix(3, 4, 10));
                let m = t.mul_broadcast_col(a, c);
                t.sum(m)
            },
            1e-5,
        );
    }

    #[test]
    fn grad_scalar_var_ops() {
        let s = Matrix::from_vec(1, 1, vec![0.7]);
        check_gradient(
            &s,
            |t, s| {
                let a = t.constant(rand_matrix(3, 3, 11));
                let d = t.div_scalar_var(a, s);
                let m = t.mul_scalar_var(d, s);
                let e = t.div_scalar_var(a, s);
                let f = t.add(m, e);
                t.sum(f)
            },
            1e-4,
        );
    }

    #[test]
    fn grad_concat_append_remove() {
        let x = rand_matrix(2, 3, 12);
        check_gradient(
            &x,
            |t, x| {
                let y = t.concat_cols(x, x);
                let z = t.append_zero_row(y);
                let w = t.remove_last_row(z);
                let v = t.mul(w, w);
                t.sum(v)
            },
            1e-5,
        );
    }

    #[test]
    fn grad_unrolled_sinkhorn() {
        // The critical test: gradients must flow through a full unrolled
        // Sinkhorn iteration with the dummy row (GEDIOT's OT layer).
        let c = rand_matrix(3, 5, 13).map(|v| v.abs());
        check_gradient(
            &c,
            |t, c| {
                let n1 = 3;
                let n2 = 5;
                let ext = t.append_zero_row(c);
                let eps = t.scalar(0.3);
                let neg = t.scale(ext, -1.0);
                let k = t.exp(t.div_scalar_var(neg, eps));
                let mut mu = vec![1.0; n1 + 1];
                mu[n1] = (n2 - n1) as f64;
                let mu = t.constant(Matrix::col_vec(mu));
                let nu = t.constant(Matrix::col_vec(vec![1.0; n2]));
                let mut phi = t.constant(Matrix::col_vec(vec![1.0; n1 + 1]));
                let mut psi = t.constant(Matrix::col_vec(vec![1.0; n2]));
                for _ in 0..4 {
                    let kt = t.transpose(k);
                    let ktphi = t.matmul(kt, phi);
                    psi = t.div(nu, ktphi);
                    let kpsi = t.matmul(k, psi);
                    phi = t.div(mu, kpsi);
                }
                let scaled = t.mul_broadcast_col(k, phi);
                let psi_row = t.transpose(psi);
                let pi_full = t.mul_broadcast_row(scaled, psi_row);
                let pi = t.remove_last_row(pi_full);
                t.dot(c, pi)
            },
            2e-3,
        );
    }

    #[test]
    fn no_grad_leaves_are_skipped() {
        let t = Tape::new();
        let x = t.constant(Matrix::filled(2, 2, 3.0));
        let y = t.sum(x);
        t.backward(y);
        assert_eq!(t.grad(x).as_slice(), &[0.0; 4]);
    }

    #[test]
    fn grad_accumulates_over_reuse() {
        let t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 1, vec![2.0]), true);
        let y = t.mul(x, x); // x²
        let z = t.add(y, x); // x² + x
        t.backward(z);
        // d/dx = 2x + 1 = 5
        assert!((t.grad(x).as_slice()[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_requires_scalar() {
        let t = Tape::new();
        let x = t.leaf(Matrix::zeros(2, 2), true);
        t.backward(x);
    }
}
