//! Neural layers used by GEDIOT and the neural baselines.
//!
//! All layers operate on row-major conventions: a batch of node features is
//! `n x d` (one row per node), graph embeddings are `1 x d` rows.

use crate::init::xavier_uniform;
use crate::params::{Bindings, ParamId, ParamStore};
use crate::tape::{Tape, Var};
use ged_linalg::Matrix;
use rand::Rng;

/// A dense affine layer `y = x W + b`.
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a `in_dim -> out_dim` layer in `store`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        let w = store.register(&format!("{name}.w"), xavier_uniform(in_dim, out_dim, rng));
        let b = store.register(&format!("{name}.b"), Matrix::zeros(1, out_dim));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Applies the layer to `x` (`n x in_dim`).
    pub fn forward(&self, tape: &Tape, binds: &Bindings, x: Var) -> Var {
        let xw = tape.matmul(x, binds.var(self.w));
        tape.add_broadcast_row(xw, binds.var(self.b))
    }

    /// Input dimension.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

/// Activation function selector for [`Mlp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Identity (no activation).
    None,
}

fn activate(tape: &Tape, act: Activation, x: Var) -> Var {
    match act {
        Activation::Relu => tape.relu(x),
        Activation::Tanh => tape.tanh(x),
        Activation::Sigmoid => tape.sigmoid(x),
        Activation::None => x,
    }
}

/// A multi-layer perceptron with a hidden activation and an optional output
/// activation.
pub struct Mlp {
    layers: Vec<Linear>,
    hidden_act: Activation,
    output_act: Activation,
}

impl Mlp {
    /// Builds an MLP through the given `dims` (e.g. `[D, 2D, D, d]` for the
    /// paper's node-embedding MLP of Eq. 9).
    ///
    /// # Panics
    /// Panics if fewer than two dims are given.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        dims: &[usize],
        hidden_act: Activation,
        output_act: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(dims.len() >= 2, "MLP needs at least input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, &format!("{name}.{i}"), w[0], w[1], rng))
            .collect();
        Mlp {
            layers,
            hidden_act,
            output_act,
        }
    }

    /// Applies the MLP to `x` (`n x dims[0]`).
    pub fn forward(&self, tape: &Tape, binds: &Bindings, x: Var) -> Var {
        let last = self.layers.len() - 1;
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, binds, h);
            h = activate(
                tape,
                if i == last {
                    self.output_act
                } else {
                    self.hidden_act
                },
                h,
            );
        }
        h
    }

    /// Output dimension.
    ///
    /// # Panics
    /// Never (construction guarantees at least one layer).
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.layers.last().unwrap().out_dim()
    }
}

/// One Graph Isomorphism Network convolution (Eq. 8 of the paper):
///
/// ```text
/// h' = MLP((1 + δ) h + Σ_{v ∈ N(u)} h_v)
/// ```
///
/// with a learnable scalar `δ` per layer. The neighbor sum is `A h` with the
/// adjacency matrix as a constant tape input.
pub struct GinLayer {
    mlp: Mlp,
    delta: ParamId,
}

impl GinLayer {
    /// Registers a GIN layer mapping `in_dim -> out_dim` node features.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        let mlp = Mlp::new(
            store,
            &format!("{name}.mlp"),
            &[in_dim, out_dim, out_dim],
            Activation::Relu,
            Activation::Relu,
            rng,
        );
        let delta = store.register(&format!("{name}.delta"), Matrix::zeros(1, 1));
        GinLayer { mlp, delta }
    }

    /// Applies the convolution. `adj` is the `n x n` adjacency (constant),
    /// `h` the `n x in_dim` node features.
    pub fn forward(&self, tape: &Tape, binds: &Bindings, adj: Var, h: Var) -> Var {
        let neigh = tape.matmul(adj, h);
        let one_plus_delta = tape.add_const(binds.var(self.delta), 1.0);
        let self_term = tape.mul_scalar_var(h, one_plus_delta);
        let agg = tape.add(self_term, neigh);
        self.mlp.forward(tape, binds, agg)
    }

    /// Output feature dimension.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.mlp.out_dim()
    }
}

/// Attention-weighted graph pooling (Eq. 13 / SimGNN):
///
/// ```text
/// h_c = tanh(W1 · mean(H)),  a = σ(H h_c),  h_G = Σ_i a_i H_i
/// ```
///
/// Input `H` is `n x d`; output is the `1 x d` graph embedding.
pub struct AttentionPool {
    w1: ParamId,
    dim: usize,
}

impl AttentionPool {
    /// Registers the pooling layer for `dim`-dimensional node embeddings.
    pub fn new<R: Rng>(store: &mut ParamStore, name: &str, dim: usize, rng: &mut R) -> Self {
        let w1 = store.register(&format!("{name}.w1"), xavier_uniform(dim, dim, rng));
        AttentionPool { w1, dim }
    }

    /// Pools `h` (`n x d`) into a `1 x d` graph embedding.
    pub fn forward(&self, tape: &Tape, binds: &Bindings, h: Var) -> Var {
        let (n, _) = tape.shape(h);
        // mean row: (1/n) 1ᵀ H  -> 1 x d
        let ones = tape.constant(Matrix::filled(1, n, 1.0 / n as f64));
        let mean = tape.matmul(ones, h);
        let hc = tape.tanh(tape.matmul(mean, binds.var(self.w1))); // 1 x d
        let scores = tape.matmul(h, tape.transpose(hc)); // n x 1
        let a = tape.sigmoid(scores);
        tape.matmul(tape.transpose(a), h) // 1 x d
    }

    /// Embedding dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }
}

/// Neural tensor network (Eq. 14 / SimGNN):
///
/// ```text
/// s(G1,G2) = ReLU(h1 W2^[1:L] h2ᵀ + W3 [h1 ‖ h2]ᵀ + b)
/// ```
///
/// Inputs are `1 x d` graph embeddings; output is a `1 x L` interaction
/// vector.
pub struct Ntn {
    w2: Vec<ParamId>,
    w3: ParamId,
    b: ParamId,
    out_dim: usize,
}

impl Ntn {
    /// Registers an NTN with `L = out_dim` slices over `d`-dim embeddings.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        d: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        let w2 = (0..out_dim)
            .map(|l| store.register(&format!("{name}.w2.{l}"), xavier_uniform(d, d, rng)))
            .collect();
        let w3 = store.register(&format!("{name}.w3"), xavier_uniform(2 * d, out_dim, rng));
        let b = store.register(&format!("{name}.b"), Matrix::zeros(1, out_dim));
        Ntn { w2, w3, b, out_dim }
    }

    /// Computes the `1 x L` interaction vector of two `1 x d` embeddings.
    pub fn forward(&self, tape: &Tape, binds: &Bindings, h1: Var, h2: Var) -> Var {
        // Bilinear slices h1 W2_l h2ᵀ, concatenated into 1 x L.
        let h2t = tape.transpose(h2);
        let mut bilinear: Option<Var> = None;
        for &w2l in &self.w2 {
            let t = tape.matmul(tape.matmul(h1, binds.var(w2l)), h2t); // 1x1
            bilinear = Some(match bilinear {
                Some(acc) => tape.concat_cols(acc, t),
                None => t,
            });
        }
        let bilinear = bilinear.expect("NTN has at least one slice");
        let joint = tape.concat_cols(h1, h2); // 1 x 2d
        let affine = tape.matmul(joint, binds.var(self.w3)); // 1 x L
        let summed = tape.add(bilinear, affine);
        let biased = tape.add(summed, binds.var(self.b));
        tape.relu(biased)
    }

    /// Output dimension `L`.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup() -> (ParamStore, SmallRng) {
        (ParamStore::new(), SmallRng::seed_from_u64(99))
    }

    #[test]
    fn linear_shapes_and_bias() {
        let (mut store, mut rng) = setup();
        let lin = Linear::new(&mut store, "l", 3, 5, &mut rng);
        // Force a recognizable bias.
        *store.value_mut(ParamId(1)) = Matrix::filled(1, 5, 2.0);
        let tape = Tape::new();
        let b = store.bind(&tape);
        let x = tape.constant(Matrix::zeros(4, 3));
        let y = lin.forward(&tape, &b, x);
        assert_eq!(tape.shape(y), (4, 5));
        // Zero input: output equals bias on every row.
        assert!(tape
            .value(y)
            .as_slice()
            .iter()
            .all(|&v| (v - 2.0).abs() < 1e-12));
    }

    #[test]
    fn mlp_forward_shapes() {
        let (mut store, mut rng) = setup();
        let mlp = Mlp::new(
            &mut store,
            "m",
            &[4, 8, 2],
            Activation::Relu,
            Activation::None,
            &mut rng,
        );
        let tape = Tape::new();
        let b = store.bind(&tape);
        let x = tape.constant(Matrix::filled(3, 4, 0.5));
        let y = mlp.forward(&tape, &b, x);
        assert_eq!(tape.shape(y), (3, 2));
        assert_eq!(mlp.out_dim(), 2);
    }

    #[test]
    fn gin_uses_neighbors() {
        let (mut store, mut rng) = setup();
        let gin = GinLayer::new(&mut store, "g", 2, 3, &mut rng);
        let tape = Tape::new();
        let b = store.bind(&tape);
        // Path graph 0-1-2 adjacency.
        let adj = tape.constant(Matrix::from_vec(
            3,
            3,
            vec![0., 1., 0., 1., 0., 1., 0., 1., 0.],
        ));
        let h = tape.constant(Matrix::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]));
        let y = gin.forward(&tape, &b, adj, h);
        assert_eq!(tape.shape(y), (3, 3));
        // Nodes 0 and 2 have different neighborhoods (their own features
        // differ), so their embeddings should differ.
        let v = tape.value(y);
        assert!((0..3).any(|c| (v[(0, c)] - v[(2, c)]).abs() > 1e-9));
    }

    #[test]
    fn attention_pool_is_permutation_invariant() {
        let (mut store, mut rng) = setup();
        let pool = AttentionPool::new(&mut store, "p", 3, &mut rng);
        let tape = Tape::new();
        let b = store.bind(&tape);
        let h = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let swapped = Matrix::from_vec(2, 3, vec![4., 5., 6., 1., 2., 3.]);
        let e1 = pool.forward(&tape, &b, tape.constant(h));
        let e2 = pool.forward(&tape, &b, tape.constant(swapped));
        assert!(tape.value(e1).max_abs_diff(&tape.value(e2)) < 1e-12);
    }

    #[test]
    fn ntn_output_shape_and_grad_flow() {
        let (mut store, mut rng) = setup();
        let ntn = Ntn::new(&mut store, "ntn", 4, 6, &mut rng);
        let tape = Tape::new();
        let b = store.bind(&tape);
        let h1 = tape.leaf(Matrix::filled(1, 4, 0.3), true);
        let h2 = tape.constant(Matrix::filled(1, 4, -0.2));
        let s = ntn.forward(&tape, &b, h1, h2);
        assert_eq!(tape.shape(s), (1, 6));
        let loss = tape.sum(s);
        tape.backward(loss);
        // Some gradient must reach h1 (unless all ReLUs are dead, which
        // xavier init makes effectively impossible for 6 slices).
        assert!(tape.grad(h1).frobenius_norm() > 0.0);
    }

    #[test]
    fn training_a_linear_layer_fits_a_line() {
        // End-to-end sanity: fit y = 2x - 1 with a 1->1 Linear via Adam.
        let (mut store, mut rng) = setup();
        let lin = Linear::new(&mut store, "fit", 1, 1, &mut rng);
        let mut adam = crate::optim::Adam::new(0.05, 0.0);
        for _ in 0..400 {
            let tape = Tape::new();
            let b = store.bind(&tape);
            let xs = tape.constant(Matrix::from_vec(4, 1, vec![-1.0, 0.0, 1.0, 2.0]));
            let ys = tape.constant(Matrix::from_vec(4, 1, vec![-3.0, -1.0, 1.0, 3.0]));
            let pred = lin.forward(&tape, &b, xs);
            let diff = tape.sub(pred, ys);
            let sq = tape.mul(diff, diff);
            let loss = tape.mean(sq);
            tape.backward(loss);
            let grads = store.gradients(&tape, &b);
            adam.step(&mut store, &grads);
        }
        let w = store.value(ParamId(0)).as_slice()[0];
        let bias = store.value(ParamId(1)).as_slice()[0];
        assert!((w - 2.0).abs() < 0.05, "w = {w}");
        assert!((bias + 1.0).abs() < 0.05, "b = {bias}");
    }
}
