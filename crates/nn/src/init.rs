//! Weight initialization.

use ged_linalg::Matrix;
use rand::Rng;

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
    let a = (6.0 / (rows + cols) as f64).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..a))
}

/// Zero initialization (biases).
#[must_use]
pub fn zeros(rows: usize, cols: usize) -> Matrix {
    Matrix::zeros(rows, cols)
}

/// Inverse of softplus: returns `x` such that `softplus(x) = y`.
///
/// Used to initialize the learnable Sinkhorn ε parameter so that its
/// softplus equals the requested `ε0` (e.g. 0.05).
///
/// # Panics
/// Panics if `y <= 0`.
#[must_use]
pub fn softplus_inverse(y: f64) -> f64 {
    assert!(y > 0.0, "softplus range is positive");
    // softplus(x) = ln(1 + e^x)  =>  x = ln(e^y - 1)
    (y.exp() - 1.0).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let w = xavier_uniform(10, 20, &mut rng);
        let a = (6.0f64 / 30.0).sqrt();
        assert!(w.max() <= a && w.min() >= -a);
        // Should actually vary.
        assert!(w.max() - w.min() > a * 0.5);
    }

    #[test]
    fn softplus_inverse_roundtrip() {
        for y in [0.01, 0.05, 0.5, 1.0, 3.0] {
            let x = softplus_inverse(y);
            let sp = x.max(0.0) + (-x.abs()).exp().ln_1p();
            assert!((sp - y).abs() < 1e-12, "y={y} sp={sp}");
        }
    }
}
