//! Exact GED via A* search, plus the A*-Beam approximation.
//!
//! The search space is the tree of partial injective mappings: at depth `i`
//! node `u_i` of `G1` (nodes processed in a fixed order) is mapped to one of
//! the still-free nodes of `G2`. With `n1 <= n2` and uniform costs, optimal
//! solutions never delete nodes (paper convention, Section 3.1), so leaves
//! are complete injective mappings.
//!
//! `g` (path cost) is maintained incrementally; `h` is the admissible
//! label-multiset + edge-count heuristic on the unmapped remainder, so A*
//! returns the exact GED. A*-Beam keeps only the best `beam` states per
//! depth, trading optimality for polynomial time [Neuhaus et al. 2006].

use ged_core::pairs::ordered;
use ged_graph::{Graph, Label, NodeMapping};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of an A* (or beam) search.
#[derive(Clone, Debug)]
pub struct AstarResult {
    /// The edit distance achieved by `mapping` (exact GED for full A*).
    pub ged: usize,
    /// The optimal (or best-found) node matching, in the ordered
    /// orientation (smaller graph -> larger graph).
    pub mapping: NodeMapping,
    /// Whether the inputs were swapped to enforce `n1 <= n2`.
    pub swapped: bool,
    /// Number of states expanded.
    pub expanded: usize,
}

#[derive(Clone, PartialEq, Eq)]
struct State {
    mapping: Vec<u32>,
    g: usize,
}

/// Incremental cost of extending `state` by mapping `u = depth` to `v`.
fn extension_cost(g1: &Graph, g2: &Graph, mapping: &[u32], v: u32) -> usize {
    let u = mapping.len() as u32;
    let mut cost = 0;
    if g1.label(u) != g2.label(v) {
        cost += 1;
    }
    // Edges between u and already-mapped nodes.
    for (w, &mw) in mapping.iter().enumerate() {
        let w = w as u32;
        let in_g1 = g1.has_edge(u, w);
        let in_g2 = g2.has_edge(v, mw);
        if in_g1 != in_g2 {
            cost += 1;
        }
    }
    cost
}

/// Cost of closing a complete mapping: unmatched-node insertions plus the
/// `G2` edges with at least one unmatched endpoint.
fn closing_cost(g2: &Graph, mapping: &[u32]) -> usize {
    let n2 = g2.num_nodes();
    let mut matched = vec![false; n2];
    for &v in mapping {
        matched[v as usize] = true;
    }
    let mut cost = n2 - mapping.len();
    for (v, w) in g2.edges() {
        if !matched[v as usize] || !matched[w as usize] {
            cost += 1;
        }
    }
    cost
}

/// Admissible heuristic: label-multiset bound on unmapped nodes plus the
/// remaining-edge-count gap.
fn heuristic(g1: &Graph, g2: &Graph, mapping: &[u32]) -> usize {
    let mut used = vec![false; g2.num_nodes()];
    for &v in mapping {
        used[v as usize] = true;
    }
    heuristic_in(g1, g2, mapping, &used, &mut Vec::new(), &mut Vec::new())
}

/// [`heuristic`] with the `G2` match marks precomputed by the caller
/// (`used[v]` iff `v` is in `mapping`'s image) and the label multisets
/// sorted into reusable buffers. Pure integer arithmetic, so reuse is
/// trivially result-identical.
fn heuristic_in(
    g1: &Graph,
    g2: &Graph,
    mapping: &[u32],
    used: &[bool],
    rest1: &mut Vec<Label>,
    rest2: &mut Vec<Label>,
) -> usize {
    let depth = mapping.len();
    rest1.clear();
    rest1.extend((depth..g1.num_nodes()).map(|u| g1.label(u as u32)));
    rest2.clear();
    rest2.extend(
        (0..g2.num_nodes())
            .filter(|&v| !used[v])
            .map(|v| g2.label(v as u32)),
    );
    rest1.sort_unstable();
    rest2.sort_unstable();
    let (mut i, mut j, mut only1, mut only2) = (0, 0, 0usize, 0usize);
    while i < rest1.len() && j < rest2.len() {
        match rest1[i].cmp(&rest2[j]) {
            std::cmp::Ordering::Less => {
                only1 += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                only2 += 1;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    only1 += rest1.len() - i;
    only2 += rest2.len() - j;
    let node_term = only1.max(only2);

    // Edges not yet accounted for by `g`: those with at least one endpoint
    // beyond the processed prefix (G1) / outside the matched set (G2).
    let e1_rem = g1
        .edges()
        .filter(|&(a, b)| (a as usize) >= depth || (b as usize) >= depth)
        .count();
    let e2_rem = g2
        .edges()
        .filter(|&(a, b)| !used[a as usize] || !used[b as usize])
        .count();
    node_term + e1_rem.abs_diff(e2_rem)
}

/// Exact GED by A*. Suitable for small graphs (≤ ~10 nodes, as in the
/// paper's ground-truth generation).
///
/// # Panics
/// Panics if either graph is empty.
#[must_use]
pub fn astar_exact(g1: &Graph, g2: &Graph) -> AstarResult {
    astar_exact_with_limit(g1, g2, usize::MAX).expect("unlimited A* always completes")
}

/// Exact A* with a state-expansion budget; returns `None` if the budget is
/// exhausted before the optimum is proven (used by the Figure 15
/// scalability study where exact solvers are expected to blow up).
#[must_use]
pub fn astar_exact_with_limit(g1: &Graph, g2: &Graph, max_expanded: usize) -> Option<AstarResult> {
    let (a, b, swapped) = ordered(g1, g2);
    let n1 = a.num_nodes();

    // Open list keyed by f = g + h; tie-break on deeper states (faster
    // goal discovery) via Reverse ordering on (f, -depth).
    let mut heap: BinaryHeap<Reverse<(usize, usize, usize)>> = BinaryHeap::new();
    let mut states: Vec<State> = vec![State {
        mapping: Vec::new(),
        g: 0,
    }];
    let h0 = heuristic(a, b, &[]);
    heap.push(Reverse((h0, n1, 0)));

    let mut expanded = 0usize;
    while let Some(Reverse((f, _, idx))) = heap.pop() {
        let state = states[idx].clone();
        if state.mapping.len() == n1 {
            let total = state.g + closing_cost(b, &state.mapping);
            debug_assert!(total <= f + closing_cost(b, &state.mapping));
            return Some(AstarResult {
                ged: total,
                mapping: NodeMapping::new(state.mapping),
                swapped,
                expanded,
            });
        }
        expanded += 1;
        if expanded > max_expanded {
            return None;
        }
        let mut used = vec![false; b.num_nodes()];
        for &v in &state.mapping {
            used[v as usize] = true;
        }
        for v in 0..b.num_nodes() as u32 {
            if used[v as usize] {
                continue;
            }
            let mut mapping = state.mapping.clone();
            let delta = extension_cost(a, b, &mapping, v);
            mapping.push(v);
            let g = state.g + delta;
            let f = if mapping.len() == n1 {
                g + closing_cost(b, &mapping)
            } else {
                g + heuristic(a, b, &mapping)
            };
            let depth = mapping.len();
            states.push(State { mapping, g });
            heap.push(Reverse((f, n1 - depth, states.len() - 1)));
        }
    }
    unreachable!("A* always reaches a complete mapping");
}

/// Reusable scratch buffers for [`astar_beam_in`], letting batch callers
/// amortize the per-state mark vector and the heuristic's label-multiset
/// buffers across many searches.
#[derive(Clone, Debug, Default)]
pub struct BeamWorkspace {
    used: Vec<bool>,
    rest1: Vec<Label>,
    rest2: Vec<Label>,
}

impl BeamWorkspace {
    /// An empty workspace; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// A*-Beam [Neuhaus et al. 2006]: level-synchronous beam search that keeps
/// only the `beam` most promising partial mappings per depth. Returns a
/// feasible (upper-bound) GED.
///
/// # Panics
/// Panics if `beam == 0`.
#[must_use]
pub fn astar_beam(g1: &Graph, g2: &Graph, beam: usize) -> AstarResult {
    astar_beam_in(g1, g2, beam, &mut BeamWorkspace::new())
}

/// [`astar_beam`] reusing caller-owned scratch buffers. The search is pure
/// integer arithmetic over freshly reset buffers, so the result is
/// identical to the allocating entry point.
///
/// # Panics
/// Panics if `beam == 0`.
#[must_use]
pub fn astar_beam_in(g1: &Graph, g2: &Graph, beam: usize, ws: &mut BeamWorkspace) -> AstarResult {
    assert!(beam >= 1, "beam width must be positive");
    let (a, b, swapped) = ordered(g1, g2);
    let n1 = a.num_nodes();
    let n2 = b.num_nodes();

    let mut frontier: Vec<State> = vec![State {
        mapping: Vec::new(),
        g: 0,
    }];
    let mut expanded = 0usize;
    for depth in 0..n1 {
        let mut next: Vec<(usize, State)> = Vec::with_capacity(frontier.len() * (n2 - depth));
        for state in &frontier {
            expanded += 1;
            ws.used.clear();
            ws.used.resize(n2, false);
            for &v in &state.mapping {
                ws.used[v as usize] = true;
            }
            for v in 0..n2 as u32 {
                if ws.used[v as usize] {
                    continue;
                }
                let delta = extension_cost(a, b, &state.mapping, v);
                let mut mapping = state.mapping.clone();
                mapping.push(v);
                let g = state.g + delta;
                // Mark v so `used` matches the extended mapping's image for
                // the heuristic, then restore it for the next sibling.
                ws.used[v as usize] = true;
                let f = g + heuristic_in(a, b, &mapping, &ws.used, &mut ws.rest1, &mut ws.rest2);
                ws.used[v as usize] = false;
                next.push((f, State { mapping, g }));
            }
        }
        next.sort_by_key(|&(f, _)| f);
        next.truncate(beam);
        frontier = next.into_iter().map(|(_, s)| s).collect();
    }

    let best = frontier
        .into_iter()
        .map(|s| {
            let total = s.g + closing_cost(b, &s.mapping);
            (total, s)
        })
        .min_by_key(|&(total, _)| total)
        .expect("beam always retains at least one state");
    AstarResult {
        ged: best.0,
        mapping: NodeMapping::new(best.1.mapping),
        swapped,
        expanded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_graph::{generate, isomorphism::are_isomorphic, Label};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn figure1() -> (Graph, Graph) {
        let g1 = Graph::from_edges(
            vec![Label(1), Label(1), Label(2)],
            &[(0, 1), (0, 2), (1, 2)],
        );
        let g2 = Graph::from_edges(
            vec![Label(1), Label(1), Label(3), Label(4)],
            &[(0, 1), (0, 2), (2, 3)],
        );
        (g1, g2)
    }

    /// Brute-force exact GED over all injective mappings.
    fn brute_ged(g1: &Graph, g2: &Graph) -> usize {
        fn rec(
            g1: &Graph,
            g2: &Graph,
            u: usize,
            used: &mut Vec<bool>,
            map: &mut Vec<u32>,
            best: &mut usize,
        ) {
            if u == g1.num_nodes() {
                *best = (*best).min(NodeMapping::new(map.clone()).induced_cost(g1, g2));
                return;
            }
            for v in 0..g2.num_nodes() {
                if !used[v] {
                    used[v] = true;
                    map.push(v as u32);
                    rec(g1, g2, u + 1, used, map, best);
                    map.pop();
                    used[v] = false;
                }
            }
        }
        let mut best = usize::MAX;
        rec(
            g1,
            g2,
            0,
            &mut vec![false; g2.num_nodes()],
            &mut Vec::new(),
            &mut best,
        );
        best
    }

    #[test]
    fn figure1_ged_is_four() {
        let (g1, g2) = figure1();
        let res = astar_exact(&g1, &g2);
        assert_eq!(res.ged, 4);
        assert_eq!(res.mapping.induced_cost(&g1, &g2), 4);
        // The mapping realizes a valid path.
        let path = res.mapping.edit_path(&g1, &g2);
        assert!(are_isomorphic(&path.apply(&g1).unwrap(), &g2));
    }

    #[test]
    fn matches_brute_force_on_random_pairs() {
        let mut rng = SmallRng::seed_from_u64(71);
        for trial in 0..40 {
            let n1 = rng.gen_range(2..=5);
            let n2 = rng.gen_range(n1..=6);
            let g1 = generate::random_connected(n1, 1, &[0.5, 0.3, 0.2], &mut rng);
            let g2 = generate::random_connected(n2, 2, &[0.5, 0.3, 0.2], &mut rng);
            let exact = brute_ged(&g1, &g2);
            let res = astar_exact(&g1, &g2);
            assert_eq!(res.ged, exact, "trial {trial}");
        }
    }

    #[test]
    fn symmetry_and_identity() {
        let (g1, g2) = figure1();
        assert_eq!(astar_exact(&g1, &g2).ged, astar_exact(&g2, &g1).ged);
        assert_eq!(astar_exact(&g1, &g1).ged, 0);
    }

    #[test]
    fn triangle_inequality_on_small_graphs() {
        // Invariant F: GED is a metric.
        let mut rng = SmallRng::seed_from_u64(72);
        for _ in 0..15 {
            let a = generate::random_connected(4, 1, &[0.5, 0.5], &mut rng);
            let b = generate::random_connected(5, 1, &[0.5, 0.5], &mut rng);
            let c = generate::random_connected(4, 2, &[0.5, 0.5], &mut rng);
            let ab = astar_exact(&a, &b).ged;
            let bc = astar_exact(&b, &c).ged;
            let ac = astar_exact(&a, &c).ged;
            assert!(ac <= ab + bc, "triangle violated: {ac} > {ab} + {bc}");
        }
    }

    #[test]
    fn perturbation_is_upper_bounded_by_delta() {
        let mut rng = SmallRng::seed_from_u64(73);
        for _ in 0..20 {
            let g = generate::random_connected(6, 2, &[0.4, 0.3, 0.3], &mut rng);
            let p = generate::perturb_with_edits(&g, 3, 3, &mut rng);
            let exact = astar_exact(&g, &p.graph).ged;
            assert!(exact <= p.applied, "exact {exact} > applied {}", p.applied);
        }
    }

    #[test]
    fn beam_is_feasible_and_converges_to_exact() {
        let mut rng = SmallRng::seed_from_u64(74);
        for _ in 0..20 {
            let g1 = generate::random_connected(5, 1, &[0.5, 0.5], &mut rng);
            let g2 = generate::random_connected(6, 2, &[0.5, 0.5], &mut rng);
            let exact = astar_exact(&g1, &g2).ged;
            let narrow = astar_beam(&g1, &g2, 1).ged;
            let wide = astar_beam(&g1, &g2, 1000).ged;
            assert!(narrow >= exact);
            assert_eq!(wide, exact, "full-width beam must be exact");
        }
    }

    #[test]
    fn expansion_limit_reports_none() {
        let mut rng = SmallRng::seed_from_u64(75);
        let g1 = generate::random_connected(8, 3, &[1.0], &mut rng);
        let g2 = generate::random_connected(9, 3, &[1.0], &mut rng);
        assert!(astar_exact_with_limit(&g1, &g2, 1).is_none());
        assert!(astar_exact_with_limit(&g1, &g2, usize::MAX).is_some());
    }
}
