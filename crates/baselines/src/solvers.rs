//! [`GedSolver`] adapters for the baseline methods, so that the whole
//! Table-3 lineup — classical, neural, and the paper's own solvers — sits
//! behind one polymorphic interface (see `ged_core::solver` for the trait
//! contract).
//!
//! Trained models are held behind [`Arc`] so a registry can share one set
//! of trained weights between solvers: [`NoahSolver`] reuses the same
//! GEDGNN model as [`GedgnnSolver`] for its search guidance.

use crate::classic::classic_ged;
use crate::gedgnn::Gedgnn;
use crate::simgnn::Simgnn;
use crate::tagsim::TagSim;
use ged_core::pairs::GedPair;
use ged_core::solver::{GedEstimate, GedSolver, PathEstimate};
use std::sync::Arc;

/// Adapter for a trained [`Simgnn`] regressor. The same type backs both
/// the `SimGNN` and `GPN` table rows (the GPN stand-in is a GCN-flavored
/// `Simgnn` variant), so the display name is explicit.
pub struct SimgnnSolver {
    name: &'static str,
    model: Arc<Simgnn>,
}

impl SimgnnSolver {
    /// Wraps a trained model under the given table name.
    #[must_use]
    pub fn new(name: &'static str, model: Arc<Simgnn>) -> Self {
        SimgnnSolver { name, model }
    }
}

impl GedSolver for SimgnnSolver {
    fn name(&self) -> &str {
        self.name
    }

    fn predict(&self, pair: &GedPair) -> GedEstimate {
        GedEstimate {
            ged: self.model.predict(&pair.g1, &pair.g2),
        }
    }

    fn edit_path(&self, _pair: &GedPair, _k: usize) -> Option<PathEstimate> {
        None // pure regressor: no matching to realize as a path
    }
}

/// Adapter for a trained [`TagSim`] type-count regressor.
pub struct TagsimSolver {
    model: Arc<TagSim>,
}

impl TagsimSolver {
    /// Wraps a trained model.
    #[must_use]
    pub fn new(model: Arc<TagSim>) -> Self {
        TagsimSolver { model }
    }
}

impl GedSolver for TagsimSolver {
    fn name(&self) -> &str {
        "TaGSim"
    }

    fn predict(&self, pair: &GedPair) -> GedEstimate {
        GedEstimate {
            ged: self.model.predict(&pair.g1, &pair.g2),
        }
    }

    fn edit_path(&self, _pair: &GedPair, _k: usize) -> Option<PathEstimate> {
        None // pure regressor: no matching to realize as a path
    }
}

/// Adapter for a trained [`Gedgnn`] comparator (value head plus a matching
/// matrix that the k-best framework turns into edit paths).
pub struct GedgnnSolver {
    model: Arc<Gedgnn>,
}

impl GedgnnSolver {
    /// Wraps a trained model.
    #[must_use]
    pub fn new(model: Arc<Gedgnn>) -> Self {
        GedgnnSolver { model }
    }
}

impl GedSolver for GedgnnSolver {
    fn name(&self) -> &str {
        "GEDGNN"
    }

    fn predict(&self, pair: &GedPair) -> GedEstimate {
        GedEstimate {
            ged: self.model.predict(&pair.g1, &pair.g2).ged,
        }
    }

    fn edit_path(&self, pair: &GedPair, k: usize) -> Option<PathEstimate> {
        let (_, path) = self.model.predict_with_path(&pair.g1, &pair.g2, k);
        Some(PathEstimate::from_mapping(pair, path.ged, path.mapping))
    }
}

/// Adapter for the training-free classical combination (the better of
/// Hungarian and VJ, both realized as feasible paths).
#[derive(Clone, Copy, Debug, Default)]
pub struct ClassicSolver;

impl GedSolver for ClassicSolver {
    fn name(&self) -> &str {
        "Classic"
    }

    fn predict(&self, pair: &GedPair) -> GedEstimate {
        GedEstimate {
            ged: classic_ged(&pair.g1, &pair.g2).ged as f64,
        }
    }

    fn edit_path(&self, pair: &GedPair, _k: usize) -> Option<PathEstimate> {
        let res = classic_ged(&pair.g1, &pair.g2);
        Some(PathEstimate::from_mapping(pair, res.ged, res.mapping))
    }
}

/// Adapter for the Noah-like guided beam search. Shares the trained
/// GEDGNN model (its coupling matrix steers the search) via [`Arc`].
pub struct NoahSolver {
    guidance: Arc<Gedgnn>,
    /// Beam width for value prediction; also the floor for `edit_path`'s
    /// `k` (a beam narrower than 4 degenerates to greedy search).
    beam: usize,
}

impl NoahSolver {
    /// Wraps the trained guidance model with the default beam width (4).
    #[must_use]
    pub fn new(guidance: Arc<Gedgnn>) -> Self {
        NoahSolver { guidance, beam: 4 }
    }

    /// Sets the beam width used for value predictions (clamped to ≥ 4).
    #[must_use]
    pub fn with_beam(mut self, beam: usize) -> Self {
        self.beam = beam.max(4);
        self
    }

    fn search(&self, pair: &GedPair, beam: usize) -> crate::astar::AstarResult {
        let guidance = self.guidance.predict(&pair.g1, &pair.g2).matching;
        crate::noah::noah_like(&pair.g1, &pair.g2, &guidance, beam, 1.0)
    }
}

impl GedSolver for NoahSolver {
    fn name(&self) -> &str {
        "Noah"
    }

    fn predict(&self, pair: &GedPair) -> GedEstimate {
        GedEstimate {
            ged: self.search(pair, self.beam).ged as f64,
        }
    }

    fn edit_path(&self, pair: &GedPair, k: usize) -> Option<PathEstimate> {
        let res = self.search(pair, k.max(4));
        Some(PathEstimate::from_mapping(pair, res.ged, res.mapping))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_core::solver::SolverRegistry;
    use ged_graph::generate;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn pair(seed: u64) -> GedPair {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generate::random_connected(5, 1, &[0.5, 0.5], &mut rng);
        let p = generate::perturb_with_edits(&g, 2, 2, &mut rng);
        GedPair::supervised(g, p.graph, p.applied as f64, p.mapping)
    }

    #[test]
    fn classic_solver_paths_are_feasible() {
        let p = pair(1);
        let est = ClassicSolver
            .edit_path(&p, 4)
            .expect("classic generates paths");
        assert_eq!(est.ops.len(), est.ged);
        let value = ClassicSolver.predict(&p).ged;
        assert_eq!(
            value, est.ged as f64,
            "classic value IS its realized path length"
        );
    }

    #[test]
    fn regressors_decline_paths_but_predict() {
        let mut rng = SmallRng::seed_from_u64(2);
        let p = pair(3);
        let simgnn = Arc::new(Simgnn::new(
            crate::simgnn::SimgnnConfig::small(2, crate::simgnn::SimgnnVariant::SimGnn),
            &mut rng,
        ));
        let tagsim = Arc::new(TagSim::new(crate::tagsim::TagSimConfig::small(2), &mut rng));
        let s = SimgnnSolver::new("SimGNN", simgnn);
        let t = TagsimSolver::new(tagsim);
        assert!(s.predict(&p).ged.is_finite());
        assert!(t.predict(&p).ged.is_finite());
        assert!(s.edit_path(&p, 4).is_none());
        assert!(t.edit_path(&p, 4).is_none());
    }

    #[test]
    fn gedgnn_and_noah_share_one_model() {
        let mut rng = SmallRng::seed_from_u64(4);
        let model = Arc::new(Gedgnn::new(crate::gedgnn::GedgnnConfig::small(2), &mut rng));
        let mut reg = SolverRegistry::new();
        reg.register(
            ged_core::method::MethodKind::GedGnn,
            Box::new(GedgnnSolver::new(Arc::clone(&model))),
        );
        reg.register(
            ged_core::method::MethodKind::Noah,
            Box::new(NoahSolver::new(model)),
        );
        assert_eq!(reg.names(), vec!["GEDGNN", "Noah"]);
        let p = pair(5);
        for (method, solver) in reg.iter() {
            let est = solver.edit_path(&p, 6).expect("both generate paths");
            assert_eq!(est.ops.len(), est.ged, "{method}");
            assert_eq!(solver.name(), method.name());
        }
    }
}
