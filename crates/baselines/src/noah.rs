//! A Noah-like hybrid: beam search guided by a learned coupling matrix.
//!
//! Noah [Yang & Zou 2021] couples A*-Beam with a learned graph path network
//! (GPN) that steers the expansion order. The GPN's exact architecture is
//! not specified in the paper we reproduce, so we substitute the natural
//! analogue available in this system: the coupling matrix of a trained
//! model (GEDIOT or GEDGNN) acts as the learned guidance — candidate
//! extensions are ranked by `g + h + γ·(1 − π[u][v])`, i.e. the admissible
//! classical score softened by the learned matching confidence. The final
//! GED is the true induced cost of the best complete mapping, so results
//! are always feasible (Noah's 100% feasibility in Table 3).

use ged_core::pairs::ordered;
use ged_graph::{Graph, NodeMapping};
use ged_linalg::Matrix;

use crate::astar::AstarResult;

/// Beam search over node mappings guided by `coupling` (an `n1 x n2` matrix
/// in the *ordered* orientation of the pair — e.g.
/// `GediotPrediction::coupling`).
///
/// `beam` is the number of partial mappings retained per depth;
/// `guidance_weight` (γ) scales the learned bias (0 recovers plain
/// A*-Beam ordering).
///
/// # Panics
/// Panics if `beam == 0` or the coupling shape mismatches the ordered pair.
#[must_use]
pub fn noah_like(
    g1: &Graph,
    g2: &Graph,
    coupling: &Matrix,
    beam: usize,
    guidance_weight: f64,
) -> AstarResult {
    assert!(beam >= 1, "beam width must be positive");
    let (a, b, swapped) = ordered(g1, g2);
    let n1 = a.num_nodes();
    let n2 = b.num_nodes();
    assert_eq!(
        coupling.shape(),
        (n1, n2),
        "coupling must be n1 x n2 (ordered)"
    );

    #[derive(Clone)]
    struct State {
        mapping: Vec<u32>,
        g: usize,
    }

    let mut frontier = vec![State {
        mapping: Vec::new(),
        g: 0,
    }];
    let mut expanded = 0usize;
    for depth in 0..n1 {
        let mut next: Vec<(f64, State)> = Vec::new();
        for state in &frontier {
            expanded += 1;
            let mut used = vec![false; n2];
            for &v in &state.mapping {
                used[v as usize] = true;
            }
            for v in 0..n2 as u32 {
                if used[v as usize] {
                    continue;
                }
                let mut delta = 0usize;
                if a.label(depth as u32) != b.label(v) {
                    delta += 1;
                }
                for (w, &mw) in state.mapping.iter().enumerate() {
                    let in_a = a.has_edge(depth as u32, w as u32);
                    let in_b = b.has_edge(v, mw);
                    if in_a != in_b {
                        delta += 1;
                    }
                }
                let g = state.g + delta;
                let bias = guidance_weight * (1.0 - coupling[(depth, v as usize)]);
                let score = g as f64 + bias;
                let mut mapping = state.mapping.clone();
                mapping.push(v);
                next.push((score, State { mapping, g }));
            }
        }
        next.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("finite scores"));
        next.truncate(beam);
        frontier = next.into_iter().map(|(_, s)| s).collect();
    }

    let best = frontier
        .into_iter()
        .map(|s| {
            let mapping = NodeMapping::new(s.mapping);
            let cost = mapping.induced_cost(a, b);
            (cost, mapping)
        })
        .min_by_key(|&(cost, _)| cost)
        .expect("beam retains at least one mapping");
    AstarResult {
        ged: best.0,
        mapping: best.1,
        swapped,
        expanded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::astar_exact;
    use ged_graph::generate;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn feasible_and_upper_bounds_exact() {
        let mut rng = SmallRng::seed_from_u64(121);
        for _ in 0..15 {
            let g1 = generate::random_connected(4, 1, &[0.5, 0.5], &mut rng);
            let g2 = generate::random_connected(6, 2, &[0.5, 0.5], &mut rng);
            let pi = Matrix::from_fn(4, 6, |_, _| rng.gen_range(0.0..1.0));
            let res = noah_like(&g1, &g2, &pi, 4, 1.0);
            let exact = astar_exact(&g1, &g2).ged;
            assert!(res.ged >= exact);
            assert_eq!(res.mapping.induced_cost(&g1, &g2), res.ged);
        }
    }

    #[test]
    fn perfect_guidance_finds_exact_with_tiny_beam() {
        let mut rng = SmallRng::seed_from_u64(122);
        for _ in 0..10 {
            let g = generate::random_connected(6, 2, &[0.5, 0.5], &mut rng);
            let p = generate::perturb_with_edits(&g, 2, 2, &mut rng);
            let exact = astar_exact(&g, &p.graph);
            // Oracle coupling from the exact mapping.
            let n2 = p.graph.num_nodes();
            let pi = Matrix::from_vec(g.num_nodes(), n2, exact.mapping.coupling_matrix(n2));
            let res = noah_like(&g, &p.graph, &pi, 1, 10.0);
            assert_eq!(res.ged, exact.ged);
        }
    }

    #[test]
    fn wide_beam_matches_exact() {
        let mut rng = SmallRng::seed_from_u64(123);
        let g1 = generate::random_connected(5, 1, &[0.5, 0.5], &mut rng);
        let g2 = generate::random_connected(6, 1, &[0.5, 0.5], &mut rng);
        let pi = Matrix::filled(5, 6, 0.5);
        let res = noah_like(&g1, &g2, &pi, 10_000, 1.0);
        assert_eq!(res.ged, astar_exact(&g1, &g2).ged);
    }
}
