//! Exact and approximate GED baselines.
//!
//! * [`astar`] — the exact A* algorithm (used to generate ground truth for
//!   graphs with ≤ 10 nodes, Section 6.1) and the A*-Beam approximation
//!   [Neuhaus et al. 2006]. These also stand in for the closed-source exact
//!   comparators (Nass, AStar-BMao) in the Figure 15 scalability study —
//!   same role: exponential-time exact search.
//! * [`classic`] — the cubic-time assignment-based baselines: Hungarian
//!   [Riesen & Bunke 2009], VJ [Fankhauser et al. 2011], and "Classic"
//!   (the better of the two), all realizing their mappings as feasible edit
//!   paths.
//! * [`simgnn`], [`gedgnn`], [`tagsim`] — the neural baselines of
//!   Section 6.2, built on the same `ged-nn` substrate as GEDIOT.
//! * [`noah`] — a Noah-like hybrid: beam search guided by a learned
//!   coupling matrix (substituting the paper's GPN guidance; see DESIGN.md
//!   §4).
//! * [`solvers`] — `GedSolver` adapters putting every baseline behind the
//!   uniform `ged_core::solver` interface.

#![warn(missing_docs)]

pub mod astar;
pub mod classic;
pub mod encoder;
pub mod gedgnn;
pub mod noah;
pub mod simgnn;
pub mod solvers;
pub mod tagsim;

pub use astar::{
    astar_beam, astar_beam_in, astar_exact, astar_exact_with_limit, AstarResult, BeamWorkspace,
};
pub use classic::{classic_ged, hungarian_ged, vj_ged, ClassicResult};
pub use gedgnn::{Gedgnn, GedgnnConfig};
pub use noah::noah_like;
pub use simgnn::{Simgnn, SimgnnConfig, SimgnnVariant};
pub use solvers::{ClassicSolver, GedgnnSolver, NoahSolver, SimgnnSolver, TagsimSolver};
pub use tagsim::{TagSim, TagSimConfig};
