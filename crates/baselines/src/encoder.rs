//! Shared siamese graph encoder for the neural baselines.
//!
//! SimGNN, GPN, TaGSim and GEDGNN all start from the same recipe GEDIOT
//! uses: a stack of graph convolutions over one-hot label features, with
//! all layer outputs concatenated and reduced by an MLP.

use ged_graph::Graph;
use ged_linalg::Matrix;
use ged_nn::layers::{Activation, GinLayer, Linear, Mlp};
use ged_nn::params::{Bindings, ParamStore};
use ged_nn::tape::{Tape, Var};
use rand::Rng;

/// Encoder hyperparameters.
#[derive(Clone, Debug)]
pub struct EncoderConfig {
    /// Label alphabet size (1 = unlabeled).
    pub num_labels: usize,
    /// Convolution output dimensions.
    pub conv_dims: Vec<usize>,
    /// Final embedding dimension.
    pub embed_dim: usize,
    /// Use GCN convolutions instead of GIN.
    pub use_gcn: bool,
}

impl EncoderConfig {
    /// A small CPU-friendly default.
    #[must_use]
    pub fn small(num_labels: usize) -> Self {
        EncoderConfig {
            num_labels: num_labels.max(1),
            conv_dims: vec![16, 8],
            embed_dim: 8,
            use_gcn: false,
        }
    }
}

enum Conv {
    Gin(GinLayer),
    Gcn(Linear),
}

/// A siamese node-embedding encoder.
pub struct Encoder {
    config: EncoderConfig,
    convs: Vec<Conv>,
    mlp: Mlp,
}

impl Encoder {
    /// Registers the encoder's parameters in `store`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        config: EncoderConfig,
        rng: &mut R,
    ) -> Self {
        let mut convs = Vec::new();
        let mut in_dim = if config.num_labels <= 1 {
            1
        } else {
            config.num_labels
        };
        let feat_dim = in_dim;
        for (i, &out) in config.conv_dims.iter().enumerate() {
            let conv = if config.use_gcn {
                Conv::Gcn(Linear::new(
                    store,
                    &format!("{name}.gcn{i}"),
                    in_dim,
                    out,
                    rng,
                ))
            } else {
                Conv::Gin(GinLayer::new(
                    store,
                    &format!("{name}.gin{i}"),
                    in_dim,
                    out,
                    rng,
                ))
            };
            convs.push(conv);
            in_dim = out;
        }
        let concat_dim = feat_dim + config.conv_dims.iter().sum::<usize>();
        let mlp = Mlp::new(
            store,
            &format!("{name}.mlp"),
            &[concat_dim, concat_dim, config.embed_dim],
            Activation::Relu,
            Activation::None,
            rng,
        );
        Encoder { config, convs, mlp }
    }

    /// Final embedding dimension.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.config.embed_dim
    }

    fn features(&self, g: &Graph) -> Matrix {
        let n = g.num_nodes();
        let k = self.config.num_labels;
        if k <= 1 {
            return Matrix::filled(n, 1, 1.0);
        }
        let mut x = Matrix::zeros(n, k);
        for u in 0..n {
            let l = g.label(u as u32).0 as usize;
            assert!(l < k, "label {l} outside alphabet {k}");
            x[(u, l)] = 1.0;
        }
        x
    }

    fn adjacency(&self, g: &Graph) -> Matrix {
        let n = g.num_nodes();
        let mut a = Matrix::from_vec(n, n, g.adjacency_matrix());
        if self.config.use_gcn {
            for i in 0..n {
                a[(i, i)] = 1.0;
            }
            let deg = a.row_sums();
            a = Matrix::from_fn(n, n, |i, j| a[(i, j)] / (deg[i] * deg[j]).sqrt());
        }
        a
    }

    /// Embeds one graph into `n x embed_dim` node embeddings.
    pub fn embed(&self, tape: &Tape, binds: &Bindings, g: &Graph) -> Var {
        let x0 = tape.constant(self.features(g));
        let adj = tape.constant(self.adjacency(g));
        let mut h = x0;
        let mut concat = x0;
        for conv in &self.convs {
            h = match conv {
                Conv::Gin(gin) => gin.forward(tape, binds, adj, h),
                Conv::Gcn(lin) => {
                    let ah = tape.matmul(adj, h);
                    tape.relu(lin.forward(tape, binds, ah))
                }
            };
            concat = tape.concat_cols(concat, h);
        }
        self.mlp.forward(tape, binds, concat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_graph::generate;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn embed_shapes() {
        let mut rng = SmallRng::seed_from_u64(1);
        for use_gcn in [false, true] {
            let mut store = ParamStore::new();
            let cfg = EncoderConfig {
                use_gcn,
                ..EncoderConfig::small(3)
            };
            let enc = Encoder::new(&mut store, "e", cfg, &mut rng);
            let g = generate::random_connected(6, 2, &[0.5, 0.3, 0.2], &mut rng);
            let tape = Tape::new();
            let binds = store.bind(&tape);
            let h = enc.embed(&tape, &binds, &g);
            assert_eq!(tape.shape(h), (6, enc.out_dim()));
            assert!(tape.value(h).is_finite());
        }
    }
}
