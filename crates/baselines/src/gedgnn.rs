//! GEDGNN [Piao et al. 2023] — the state-of-the-art comparator.
//!
//! GEDGNN computes pairwise vertex scores exactly like GEDIOT, but fits the
//! matching matrix `Â = σ(H1 Wm H2ᵀ)` *directly* to the 0/1 ground-truth
//! node matching with BCE — no optimal transport, no global constraints
//! (the bottom branch of Figure 2(b) in the paper). A second bilinear
//! matrix produces the cost scores `Ĉ = tanh(H1 Wc H2ᵀ)`; the value head
//! combines `⟨Ĉ, Â⟩` with an NTN graph-level score. Edit paths come from
//! the same k-best matching framework, fed with `Â`.
//!
//! Implementing it this way makes the GEDIOT-vs-GEDGNN comparison an exact
//! ablation of the learnable-Sinkhorn layer, which is the paper's central
//! claim.

use crate::encoder::{Encoder, EncoderConfig};
use ged_core::kbest::{kbest_edit_path, KBestResult};
use ged_core::pairs::{ordered, GedPair};
use ged_graph::{max_edit_ops, Graph};
use ged_linalg::Matrix;
use ged_nn::layers::{Activation, AttentionPool, Mlp, Ntn};
use ged_nn::loss::{bce_matrix, mse_scalar};
use ged_nn::params::{Bindings, ParamId, ParamStore};
use ged_nn::tape::{Tape, Var};
use ged_nn::Adam;
use rand::seq::SliceRandom;
use rand::Rng;

/// Hyperparameters.
#[derive(Clone, Debug)]
pub struct GedgnnConfig {
    /// Encoder settings.
    pub encoder: EncoderConfig,
    /// NTN output dimension.
    pub ntn_dim: usize,
    /// Loss balance between value and matching losses (as in GEDIOT).
    pub lambda: f64,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Adam weight decay.
    pub weight_decay: f64,
    /// Minibatch size.
    pub batch_size: usize,
}

impl GedgnnConfig {
    /// CPU-friendly defaults.
    #[must_use]
    pub fn small(num_labels: usize) -> Self {
        GedgnnConfig {
            encoder: EncoderConfig::small(num_labels),
            ntn_dim: 8,
            lambda: 0.8,
            learning_rate: 1e-3,
            weight_decay: 5e-4,
            batch_size: 32,
        }
    }
}

/// A GEDGNN prediction.
#[derive(Clone, Debug)]
pub struct GedgnnPrediction {
    /// Denormalized GED estimate.
    pub ged: f64,
    /// Normalized score.
    pub nged: f64,
    /// The directly-fitted matching matrix (`n1 x n2`, ordered orientation).
    pub matching: Matrix,
    /// Whether the inputs were swapped.
    pub swapped: bool,
}

/// The GEDGNN model.
pub struct Gedgnn {
    config: GedgnnConfig,
    store: ParamStore,
    encoder: Encoder,
    cost_w: ParamId,
    match_w: ParamId,
    pool: AttentionPool,
    ntn: Ntn,
    head: Mlp,
    adam: Adam,
}

impl Gedgnn {
    /// Builds a fresh model.
    pub fn new<R: Rng>(config: GedgnnConfig, rng: &mut R) -> Self {
        let mut store = ParamStore::new();
        let encoder = Encoder::new(&mut store, "enc", config.encoder.clone(), rng);
        let d = encoder.out_dim();
        let cost_w = store.register("cost_w", ged_nn::init::xavier_uniform(d, d, rng));
        let match_w = store.register("match_w", ged_nn::init::xavier_uniform(d, d, rng));
        let pool = AttentionPool::new(&mut store, "pool", d, rng);
        let ntn = Ntn::new(&mut store, "ntn", d, config.ntn_dim, rng);
        let head = Mlp::new(
            &mut store,
            "head",
            &[config.ntn_dim, 8, 4, 1],
            Activation::Relu,
            Activation::None,
            rng,
        );
        let adam = Adam::new(config.learning_rate, config.weight_decay);
        Gedgnn {
            config,
            store,
            encoder,
            cost_w,
            match_w,
            pool,
            ntn,
            head,
            adam,
        }
    }

    /// Returns `(matching Â, score)`.
    fn forward(&self, tape: &Tape, binds: &Bindings, g1: &Graph, g2: &Graph) -> (Var, Var) {
        let h1 = self.encoder.embed(tape, binds, g1);
        let h2 = self.encoder.embed(tape, binds, g2);
        let h2t = tape.transpose(h2);

        let cw = tape.matmul(h1, binds.var(self.cost_w));
        let cost = tape.tanh(tape.matmul(cw, h2t));
        let mw = tape.matmul(h1, binds.var(self.match_w));
        let matching = tape.sigmoid(tape.matmul(mw, h2t));

        let w1 = tape.dot(cost, matching);
        let e1 = self.pool.forward(tape, binds, h1);
        let e2 = self.pool.forward(tape, binds, h2);
        let s = self.ntn.forward(tape, binds, e1, e2);
        let w2 = self.head.forward(tape, binds, s);
        let score = tape.sigmoid(tape.add(w1, w2));
        (matching, score)
    }

    fn pair_loss(&self, tape: &Tape, binds: &Bindings, pair: &GedPair) -> Var {
        let (matching, score) = self.forward(tape, binds, &pair.g1, &pair.g2);
        let l_v = mse_scalar(tape, score, pair.normalized_ged().expect("supervised pair"));
        let mapping = pair.mapping.as_ref().expect("supervised pair");
        let target = Matrix::from_vec(
            pair.g1.num_nodes(),
            pair.g2.num_nodes(),
            mapping.coupling_matrix(pair.g2.num_nodes()),
        );
        let l_m = bce_matrix(tape, matching, &target);
        let lv = tape.scale(l_v, self.config.lambda);
        let lm = tape.scale(l_m, 1.0 - self.config.lambda);
        tape.add(lv, lm)
    }

    /// Trains one epoch; returns the mean loss.
    pub fn train_epoch<R: Rng>(&mut self, pairs: &[GedPair], rng: &mut R) -> f64 {
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        order.shuffle(rng);
        let mut total = 0.0;
        for batch in order.chunks(self.config.batch_size.max(1)) {
            let mut acc: Option<Vec<Matrix>> = None;
            for &i in batch {
                let tape = Tape::new();
                let binds = self.store.bind(&tape);
                let loss = self.pair_loss(&tape, &binds, &pairs[i]);
                total += tape.scalar_value(loss);
                tape.backward(loss);
                let grads = self.store.gradients(&tape, &binds);
                match &mut acc {
                    Some(a) => {
                        for (x, g) in a.iter_mut().zip(&grads) {
                            x.add_scaled_assign(g, 1.0);
                        }
                    }
                    None => acc = Some(grads),
                }
            }
            if let Some(mut a) = acc {
                let s = 1.0 / batch.len() as f64;
                for g in &mut a {
                    *g = g.scale(s);
                }
                self.adam.step(&mut self.store, &a);
            }
        }
        total / pairs.len().max(1) as f64
    }

    /// Trains for several epochs.
    pub fn train<R: Rng>(&mut self, pairs: &[GedPair], epochs: usize, rng: &mut R) -> Vec<f64> {
        (0..epochs).map(|_| self.train_epoch(pairs, rng)).collect()
    }

    /// Predicts GED and the matching matrix.
    #[must_use]
    pub fn predict(&self, g1: &Graph, g2: &Graph) -> GedgnnPrediction {
        let (a, b, swapped) = ordered(g1, g2);
        let tape = Tape::new();
        let binds = self.store.bind(&tape);
        let (matching, score) = self.forward(&tape, &binds, a, b);
        let nged = tape.scalar_value(score);
        GedgnnPrediction {
            ged: nged * max_edit_ops(a, b) as f64,
            nged,
            matching: tape.value(matching),
            swapped,
        }
    }

    /// Predicts and generates an edit path via k-best matching on `Â`.
    #[must_use]
    pub fn predict_with_path(
        &self,
        g1: &Graph,
        g2: &Graph,
        k: usize,
    ) -> (GedgnnPrediction, KBestResult) {
        let pred = self.predict(g1, g2);
        let (a, b, _) = ordered(g1, g2);
        let path = kbest_edit_path(a, b, &pred.matching, k);
        (pred, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_graph::generate;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn pairs(rng: &mut SmallRng, n: usize) -> Vec<GedPair> {
        (0..n)
            .map(|i| {
                let g = generate::random_connected(5, 1, &[0.5, 0.5], rng);
                let p = generate::perturb_with_edits(&g, 1 + i % 3, 2, rng);
                GedPair::supervised(g, p.graph, p.applied as f64, p.mapping)
            })
            .collect()
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = SmallRng::seed_from_u64(101);
        let data = pairs(&mut rng, 20);
        let mut cfg = GedgnnConfig::small(2);
        cfg.learning_rate = 5e-3;
        let mut model = Gedgnn::new(cfg, &mut rng);
        let losses = model.train(&data, 6, &mut rng);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "{losses:?}"
        );
    }

    #[test]
    fn matching_matrix_is_unconstrained_probabilities() {
        // The defining difference to GEDIOT: Â rows need not sum to 1.
        let mut rng = SmallRng::seed_from_u64(102);
        let model = Gedgnn::new(GedgnnConfig::small(2), &mut rng);
        let g1 = generate::random_connected(4, 1, &[0.5, 0.5], &mut rng);
        let g2 = generate::random_connected(6, 1, &[0.5, 0.5], &mut rng);
        let pred = model.predict(&g1, &g2);
        assert_eq!(pred.matching.shape(), (4, 6));
        for &v in pred.matching.as_slice() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn path_generation_is_feasible() {
        let mut rng = SmallRng::seed_from_u64(103);
        let model = Gedgnn::new(GedgnnConfig::small(2), &mut rng);
        let g1 = generate::random_connected(4, 1, &[0.5, 0.5], &mut rng);
        let g2 = generate::random_connected(6, 1, &[0.5, 0.5], &mut rng);
        let (_, path) = model.predict_with_path(&g1, &g2, 8);
        let out = path.path.apply(&g1).unwrap();
        assert!(ged_graph::isomorphism::are_isomorphic(&out, &g2));
    }
}
