//! Assignment-based classical baselines: Hungarian, VJ, and Classic.
//!
//! Both Hungarian [Riesen & Bunke 2009] and VJ [Fankhauser et al. 2011]
//! reduce GED to a linear sum assignment problem over the
//! `(n1+n2) x (n2+n1)` cost matrix
//!
//! ```text
//! ┌                         ┐
//! │  substitution │ delete  │      sub(i,j) = label(i,j) + |d_i - d_j| / 2
//! │  ─────────────┼───────  │      del(i)   = 1 + d_i / 2   (diagonal only)
//! │  insert       │   0     │      ins(j)   = 1 + d_j / 2   (diagonal only)
//! └                         ┘
//! ```
//!
//! (the degree-based edge estimate is the construction the paper's Figure 3
//! illustrates; `/2` avoids double-counting an edge at both endpoints).
//! The two baselines differ in the LSAP machinery — the classical Munkres
//! algorithm vs. shortest augmenting paths — which is exactly how we
//! implement them. The resulting assignment is converted to an injective
//! node matching and realized as a concrete edit path via `EPGen`, so the
//! reported GED is always feasible (an upper bound), matching the 100%
//! feasibility of "Classic" in Table 3.
//!
//! "Classic" runs both and keeps the better edit path (Section 6.2).

use ged_core::pairs::ordered;
use ged_graph::{EditPath, Graph, NodeMapping};
use ged_linalg::lsap::FORBIDDEN;
use ged_linalg::{lsap_min, lsap_min_munkres, Assignment, Matrix};

/// Result of an assignment-based GED approximation.
#[derive(Clone, Debug)]
pub struct ClassicResult {
    /// Length of the realized edit path (feasible upper bound on GED).
    pub ged: usize,
    /// The node matching (ordered orientation: smaller -> larger graph).
    pub mapping: NodeMapping,
    /// The realized edit path.
    pub path: EditPath,
    /// Whether the inputs were swapped to enforce `n1 <= n2`.
    pub swapped: bool,
}

/// Builds the Riesen–Bunke extended cost matrix for an ordered pair.
#[must_use]
pub fn riesen_bunke_cost_matrix(g1: &Graph, g2: &Graph) -> Matrix {
    let n1 = g1.num_nodes();
    let n2 = g2.num_nodes();
    let size = n1 + n2;
    let mut c = Matrix::zeros(size, size);
    for i in 0..size {
        for j in 0..size {
            c[(i, j)] = match (i < n1, j < n2) {
                (true, true) => {
                    let label = if g1.label(i as u32) == g2.label(j as u32) {
                        0.0
                    } else {
                        1.0
                    };
                    let dd = g1.degree(i as u32).abs_diff(g2.degree(j as u32)) as f64;
                    label + dd / 2.0
                }
                (true, false) => {
                    // Deletion of u_i: only on its own diagonal slot.
                    if j - n2 == i {
                        1.0 + g1.degree(i as u32) as f64 / 2.0
                    } else {
                        FORBIDDEN
                    }
                }
                (false, true) => {
                    // Insertion of v_j: only on its own diagonal slot.
                    if i - n1 == j {
                        1.0 + g2.degree(j as u32) as f64 / 2.0
                    } else {
                        FORBIDDEN
                    }
                }
                (false, false) => 0.0,
            };
        }
    }
    c
}

/// Converts an extended-matrix assignment into an injective total mapping
/// `V1 -> V2` (deleted nodes are re-matched to leftover `G2` nodes, which
/// can only produce an equal-or-better edit path under uniform costs).
fn assignment_to_mapping(a: &Assignment, n1: usize, n2: usize) -> NodeMapping {
    let mut map = vec![u32::MAX; n1];
    let mut used = vec![false; n2];
    for (i, &j) in a.row_to_col.iter().enumerate().take(n1) {
        if j < n2 {
            map[i] = j as u32;
            used[j] = true;
        }
    }
    let mut free = (0..n2 as u32).filter(|&v| !used[v as usize]);
    for slot in map.iter_mut() {
        if *slot == u32::MAX {
            *slot = free.next().expect("n1 <= n2 guarantees leftovers");
        }
    }
    NodeMapping::new(map)
}

fn solve(g1: &Graph, g2: &Graph, solver: fn(&Matrix) -> Assignment) -> ClassicResult {
    let (a, b, swapped) = ordered(g1, g2);
    let cost = riesen_bunke_cost_matrix(a, b);
    let assignment = solver(&cost);
    let mapping = assignment_to_mapping(&assignment, a.num_nodes(), b.num_nodes());
    let path = mapping.edit_path(a, b);
    ClassicResult {
        ged: path.len(),
        mapping,
        path,
        swapped,
    }
}

/// Hungarian GED [Riesen & Bunke 2009]: extended cost matrix + the Munkres
/// algorithm.
#[must_use]
pub fn hungarian_ged(g1: &Graph, g2: &Graph) -> ClassicResult {
    solve(g1, g2, lsap_min_munkres)
}

/// VJ GED [Fankhauser et al. 2011]: extended cost matrix + shortest
/// augmenting paths (Jonker–Volgenant machinery).
#[must_use]
pub fn vj_ged(g1: &Graph, g2: &Graph) -> ClassicResult {
    solve(g1, g2, lsap_min)
}

/// "Classic" (Section 6.2): runs Hungarian and VJ, returns the shorter
/// edit path.
#[must_use]
pub fn classic_ged(g1: &Graph, g2: &Graph) -> ClassicResult {
    let h = hungarian_ged(g1, g2);
    let v = vj_ged(g1, g2);
    if h.ged <= v.ged {
        h
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_graph::{generate, isomorphism::are_isomorphic, Label};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn figure1() -> (Graph, Graph) {
        let g1 = Graph::from_edges(
            vec![Label(1), Label(1), Label(2)],
            &[(0, 1), (0, 2), (1, 2)],
        );
        let g2 = Graph::from_edges(
            vec![Label(1), Label(1), Label(3), Label(4)],
            &[(0, 1), (0, 2), (2, 3)],
        );
        (g1, g2)
    }

    #[test]
    fn produces_feasible_paths() {
        let mut rng = SmallRng::seed_from_u64(81);
        for _ in 0..25 {
            let g1 =
                generate::random_connected(rng.gen_range(3..=7), 2, &[0.4, 0.3, 0.3], &mut rng);
            let g2 =
                generate::random_connected(rng.gen_range(3..=8), 2, &[0.4, 0.3, 0.3], &mut rng);
            for res in [
                hungarian_ged(&g1, &g2),
                vj_ged(&g1, &g2),
                classic_ged(&g1, &g2),
            ] {
                assert_eq!(res.ged, res.path.len());
                let (a, b, _) = ordered(&g1, &g2);
                let out = res.path.apply(a).unwrap();
                assert!(are_isomorphic(&out, b));
            }
        }
    }

    #[test]
    fn upper_bounds_the_exact_ged() {
        let mut rng = SmallRng::seed_from_u64(82);
        for _ in 0..20 {
            let g1 = generate::random_connected(4, 1, &[0.5, 0.5], &mut rng);
            let g2 = generate::random_connected(5, 2, &[0.5, 0.5], &mut rng);
            let exact = crate::astar::astar_exact(&g1, &g2).ged;
            let c = classic_ged(&g1, &g2);
            assert!(c.ged >= exact, "classic {} below exact {exact}", c.ged);
        }
    }

    #[test]
    fn classic_is_min_of_both() {
        let (g1, g2) = figure1();
        let h = hungarian_ged(&g1, &g2).ged;
        let v = vj_ged(&g1, &g2).ged;
        let c = classic_ged(&g1, &g2).ged;
        assert_eq!(c, h.min(v));
    }

    #[test]
    fn identical_graphs_zero() {
        let (g1, _) = figure1();
        assert_eq!(classic_ged(&g1, &g1).ged, 0);
    }

    #[test]
    fn cost_matrix_structure() {
        let (g1, g2) = figure1();
        let c = riesen_bunke_cost_matrix(&g1, &g2);
        assert_eq!(c.shape(), (7, 7));
        // Deletion block: off-diagonal forbidden.
        assert_eq!(c[(0, 4)], 1.0 + g1.degree(0) as f64 / 2.0);
        assert!(c[(0, 5)] >= FORBIDDEN);
        // Insertion block mirror.
        assert_eq!(c[(3, 0)], 1.0 + g2.degree(0) as f64 / 2.0);
        assert!(c[(4, 0)] >= FORBIDDEN);
        // Dummy-dummy corner is free.
        assert_eq!(c[(5, 6)], 0.0);
    }

    #[test]
    fn handles_very_different_sizes() {
        let mut rng = SmallRng::seed_from_u64(83);
        let g1 = generate::random_connected(2, 0, &[1.0], &mut rng);
        let g2 = generate::random_connected(9, 4, &[1.0], &mut rng);
        let res = classic_ged(&g1, &g2);
        assert!(res.ged >= 7); // at least the node insertions
        let out = res.path.apply(&g1).unwrap();
        assert!(are_isomorphic(&out, &g2));
    }
}
