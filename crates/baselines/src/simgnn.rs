//! SimGNN [Bai et al. 2019] and a GPN-style variant.
//!
//! SimGNN is the original GNN regressor for GED: node embeddings are pooled
//! into graph embeddings by attention, an NTN computes a pair interaction
//! vector, and an MLP regresses the normalized GED with an MSE loss. No
//! node matching is produced, so SimGNN cannot generate edit paths
//! (consistent with Tables 3/4 of the paper). The histogram feature of the
//! original is omitted (see DESIGN.md §4).
//!
//! The paper's "GPN" baseline is the graph path network of Noah used
//! standalone for GED regression; its architectural details are not given,
//! so we substitute a GCN-convolution variant of the same regressor
//! ([`SimgnnVariant::Gpn`]) — a second, independently-trained graph-level
//! regressor with a different convolution flavor.

use crate::encoder::{Encoder, EncoderConfig};
use ged_core::pairs::{ordered, GedPair};
use ged_graph::{max_edit_ops, Graph};
use ged_nn::layers::{Activation, AttentionPool, Mlp, Ntn};
use ged_nn::loss::mse_scalar;
use ged_nn::params::{Bindings, ParamStore};
use ged_nn::tape::{Tape, Var};
use ged_nn::Adam;
use rand::seq::SliceRandom;
use rand::Rng;

/// Which graph-level regressor to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimgnnVariant {
    /// GIN convolutions (SimGNN).
    SimGnn,
    /// GCN convolutions (our GPN stand-in).
    Gpn,
}

/// Hyperparameters.
#[derive(Clone, Debug)]
pub struct SimgnnConfig {
    /// Encoder settings.
    pub encoder: EncoderConfig,
    /// NTN output dimension.
    pub ntn_dim: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Adam weight decay.
    pub weight_decay: f64,
    /// Minibatch size.
    pub batch_size: usize,
}

impl SimgnnConfig {
    /// CPU-friendly defaults.
    #[must_use]
    pub fn small(num_labels: usize, variant: SimgnnVariant) -> Self {
        SimgnnConfig {
            encoder: EncoderConfig {
                use_gcn: variant == SimgnnVariant::Gpn,
                ..EncoderConfig::small(num_labels)
            },
            ntn_dim: 8,
            learning_rate: 1e-3,
            weight_decay: 5e-4,
            batch_size: 32,
        }
    }
}

/// The SimGNN/GPN graph-level GED regressor.
pub struct Simgnn {
    config: SimgnnConfig,
    store: ParamStore,
    encoder: Encoder,
    pool: AttentionPool,
    ntn: Ntn,
    head: Mlp,
    adam: Adam,
}

impl Simgnn {
    /// Builds a fresh model.
    pub fn new<R: Rng>(config: SimgnnConfig, rng: &mut R) -> Self {
        let mut store = ParamStore::new();
        let encoder = Encoder::new(&mut store, "enc", config.encoder.clone(), rng);
        let d = encoder.out_dim();
        let pool = AttentionPool::new(&mut store, "pool", d, rng);
        let ntn = Ntn::new(&mut store, "ntn", d, config.ntn_dim, rng);
        let head = Mlp::new(
            &mut store,
            "head",
            &[config.ntn_dim, 8, 4, 1],
            Activation::Relu,
            Activation::None,
            rng,
        );
        let adam = Adam::new(config.learning_rate, config.weight_decay);
        Simgnn {
            config,
            store,
            encoder,
            pool,
            ntn,
            head,
            adam,
        }
    }

    fn score(&self, tape: &Tape, binds: &Bindings, g1: &Graph, g2: &Graph) -> Var {
        let h1 = self.encoder.embed(tape, binds, g1);
        let h2 = self.encoder.embed(tape, binds, g2);
        let e1 = self.pool.forward(tape, binds, h1);
        let e2 = self.pool.forward(tape, binds, h2);
        let s = self.ntn.forward(tape, binds, e1, e2);
        let raw = self.head.forward(tape, binds, s);
        tape.sigmoid(raw)
    }

    /// Trains one epoch; returns the mean MSE loss.
    pub fn train_epoch<R: Rng>(&mut self, pairs: &[GedPair], rng: &mut R) -> f64 {
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        order.shuffle(rng);
        let mut total = 0.0;
        for batch in order.chunks(self.config.batch_size.max(1)) {
            let mut acc: Option<Vec<ged_linalg::Matrix>> = None;
            for &i in batch {
                let pair = &pairs[i];
                let tape = Tape::new();
                let binds = self.store.bind(&tape);
                let score = self.score(&tape, &binds, &pair.g1, &pair.g2);
                let target = pair.normalized_ged().expect("supervised pair");
                let loss = mse_scalar(&tape, score, target);
                total += tape.scalar_value(loss);
                tape.backward(loss);
                let grads = self.store.gradients(&tape, &binds);
                match &mut acc {
                    Some(a) => {
                        for (x, g) in a.iter_mut().zip(&grads) {
                            x.add_scaled_assign(g, 1.0);
                        }
                    }
                    None => acc = Some(grads),
                }
            }
            if let Some(mut a) = acc {
                let s = 1.0 / batch.len() as f64;
                for g in &mut a {
                    *g = g.scale(s);
                }
                self.adam.step(&mut self.store, &a);
            }
        }
        total / pairs.len().max(1) as f64
    }

    /// Trains for several epochs.
    pub fn train<R: Rng>(&mut self, pairs: &[GedPair], epochs: usize, rng: &mut R) -> Vec<f64> {
        (0..epochs).map(|_| self.train_epoch(pairs, rng)).collect()
    }

    /// Predicts the (denormalized) GED of a pair.
    #[must_use]
    pub fn predict(&self, g1: &Graph, g2: &Graph) -> f64 {
        let (a, b, _) = ordered(g1, g2);
        let tape = Tape::new();
        let binds = self.store.bind(&tape);
        let score = self.score(&tape, &binds, a, b);
        tape.scalar_value(score) * max_edit_ops(a, b) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_graph::generate;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn pairs(rng: &mut SmallRng, n: usize) -> Vec<GedPair> {
        (0..n)
            .map(|i| {
                let g = generate::random_connected(5, 1, &[0.5, 0.5], rng);
                let p = generate::perturb_with_edits(&g, 1 + i % 4, 2, rng);
                GedPair::supervised(g, p.graph, p.applied as f64, p.mapping)
            })
            .collect()
    }

    #[test]
    fn training_reduces_loss_both_variants() {
        let mut rng = SmallRng::seed_from_u64(91);
        let data = pairs(&mut rng, 20);
        for variant in [SimgnnVariant::SimGnn, SimgnnVariant::Gpn] {
            let mut cfg = SimgnnConfig::small(2, variant);
            cfg.learning_rate = 5e-3;
            let mut model = Simgnn::new(cfg, &mut rng);
            let losses = model.train(&data, 6, &mut rng);
            assert!(
                losses.last().unwrap() < losses.first().unwrap(),
                "{variant:?}: {losses:?}"
            );
        }
    }

    #[test]
    fn prediction_is_order_insensitive_and_bounded() {
        let mut rng = SmallRng::seed_from_u64(92);
        let model = Simgnn::new(SimgnnConfig::small(2, SimgnnVariant::SimGnn), &mut rng);
        let g1 = generate::random_connected(4, 1, &[0.5, 0.5], &mut rng);
        let g2 = generate::random_connected(7, 2, &[0.5, 0.5], &mut rng);
        let a = model.predict(&g1, &g2);
        let b = model.predict(&g2, &g1);
        assert!((a - b).abs() < 1e-12);
        assert!(a >= 0.0 && a <= ged_graph::max_edit_ops(&g1, &g2) as f64);
    }
}
