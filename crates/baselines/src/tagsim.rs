//! TaGSim [Bai & Zhao 2021] — type-aware graph similarity.
//!
//! TaGSim's defining idea: instead of regressing one GED scalar, predict
//! the *count of edit operations per type* (node relabeling, node
//! insertion/deletion, edge insertion, edge deletion) and sum them. We keep
//! that idea on top of the shared encoder: graph embeddings are pooled and
//! combined into a pair feature `[e1 ‖ e2 ‖ |e1 − e2|]`, and four MLP heads
//! regress the four normalized type counts (each supervised by MSE against
//! the type counts induced by the ground-truth matching).

use crate::encoder::{Encoder, EncoderConfig};
use ged_core::pairs::{ordered, GedPair};
use ged_graph::{max_edit_ops, Graph, NodeMapping};
use ged_nn::layers::{Activation, AttentionPool, Mlp};
use ged_nn::loss::mse_scalar;
use ged_nn::params::{Bindings, ParamStore};
use ged_nn::tape::{Tape, Var};
use ged_nn::Adam;
use rand::seq::SliceRandom;
use rand::Rng;

/// Ground-truth edit-operation counts by type, induced by a node matching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TypeCounts {
    /// Node relabelings.
    pub relabel: usize,
    /// Node insertions (`n2 - n1`).
    pub node_ins: usize,
    /// Edge deletions.
    pub edge_del: usize,
    /// Edge insertions.
    pub edge_ins: usize,
}

impl TypeCounts {
    /// Derives the per-type counts of a matching's induced edit path.
    ///
    /// # Panics
    /// Panics if the mapping does not cover `g1` or `n1 > n2`.
    #[must_use]
    pub fn from_mapping(g1: &Graph, g2: &Graph, mapping: &NodeMapping) -> Self {
        let n1 = g1.num_nodes();
        let n2 = g2.num_nodes();
        assert!(n1 <= n2 && mapping.len() == n1);
        let inv = mapping.inverse(n2);
        let relabel = (0..n1 as u32)
            .filter(|&u| g1.label(u) != g2.label(mapping.image(u)))
            .count();
        let edge_del = g1
            .edges()
            .filter(|&(u, v)| !g2.has_edge(mapping.image(u), mapping.image(v)))
            .count();
        let edge_ins = g2
            .edges()
            .filter(|&(v, w)| {
                !matches!(
                    (inv[v as usize], inv[w as usize]),
                    (Some(a), Some(b)) if g1.has_edge(a, b)
                )
            })
            .count();
        TypeCounts {
            relabel,
            node_ins: n2 - n1,
            edge_del,
            edge_ins,
        }
    }

    /// Total edit count.
    #[must_use]
    pub fn total(&self) -> usize {
        self.relabel + self.node_ins + self.edge_del + self.edge_ins
    }
}

/// Hyperparameters.
#[derive(Clone, Debug)]
pub struct TagSimConfig {
    /// Encoder settings.
    pub encoder: EncoderConfig,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Adam weight decay.
    pub weight_decay: f64,
    /// Minibatch size.
    pub batch_size: usize,
}

impl TagSimConfig {
    /// CPU-friendly defaults.
    #[must_use]
    pub fn small(num_labels: usize) -> Self {
        TagSimConfig {
            encoder: EncoderConfig::small(num_labels),
            learning_rate: 1e-3,
            weight_decay: 5e-4,
            batch_size: 32,
        }
    }
}

/// The TaGSim model: four type-count regression heads.
pub struct TagSim {
    config: TagSimConfig,
    store: ParamStore,
    encoder: Encoder,
    pool: AttentionPool,
    heads: Vec<Mlp>,
    adam: Adam,
}

impl TagSim {
    /// Builds a fresh model.
    pub fn new<R: Rng>(config: TagSimConfig, rng: &mut R) -> Self {
        let mut store = ParamStore::new();
        let encoder = Encoder::new(&mut store, "enc", config.encoder.clone(), rng);
        let d = encoder.out_dim();
        let pool = AttentionPool::new(&mut store, "pool", d, rng);
        let heads = ["relabel", "node_ins", "edge_del", "edge_ins"]
            .iter()
            .map(|name| {
                Mlp::new(
                    &mut store,
                    &format!("head_{name}"),
                    &[3 * d, 8, 1],
                    Activation::Relu,
                    Activation::Sigmoid,
                    rng,
                )
            })
            .collect();
        let adam = Adam::new(config.learning_rate, config.weight_decay);
        TagSim {
            config,
            store,
            encoder,
            pool,
            heads,
            adam,
        }
    }

    /// Returns the four normalized type scores.
    fn forward(&self, tape: &Tape, binds: &Bindings, g1: &Graph, g2: &Graph) -> Vec<Var> {
        let h1 = self.encoder.embed(tape, binds, g1);
        let h2 = self.encoder.embed(tape, binds, g2);
        let e1 = self.pool.forward(tape, binds, h1);
        let e2 = self.pool.forward(tape, binds, h2);
        let diff = tape.sub(e1, e2);
        let absdiff = tape.relu(tape.concat_cols(diff, tape.scale(diff, -1.0)));
        // |x| = relu(x) + relu(-x): merge the two halves back.
        let d = self.encoder.out_dim();
        let (pos, neg) = {
            let v = absdiff;
            // Split columns back apart via constant masks is costlier than
            // just summing the two relu halves with a matmul; build a
            // selection matrix once.
            let mut sel = ged_linalg::Matrix::zeros(2 * d, d);
            for i in 0..d {
                sel[(i, i)] = 1.0;
                sel[(d + i, i)] = 1.0;
            }
            (v, tape.constant(sel))
        };
        let abs = tape.matmul(pos, neg); // 1 x d
        let feat = tape.concat_cols(tape.concat_cols(e1, e2), abs); // 1 x 3d
        self.heads
            .iter()
            .map(|h| h.forward(tape, binds, feat))
            .collect()
    }

    fn pair_loss(&self, tape: &Tape, binds: &Bindings, pair: &GedPair) -> Var {
        let scores = self.forward(tape, binds, &pair.g1, &pair.g2);
        let mapping = pair.mapping.as_ref().expect("supervised pair");
        let counts = TypeCounts::from_mapping(&pair.g1, &pair.g2, mapping);
        let denom = max_edit_ops(&pair.g1, &pair.g2) as f64;
        let targets = [
            counts.relabel as f64 / denom,
            counts.node_ins as f64 / denom,
            counts.edge_del as f64 / denom,
            counts.edge_ins as f64 / denom,
        ];
        let mut loss = mse_scalar(tape, scores[0], targets[0]);
        for (s, t) in scores.iter().zip(targets.iter()).skip(1) {
            let l = mse_scalar(tape, *s, *t);
            loss = tape.add(loss, l);
        }
        loss
    }

    /// Trains one epoch; returns the mean loss.
    pub fn train_epoch<R: Rng>(&mut self, pairs: &[GedPair], rng: &mut R) -> f64 {
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        order.shuffle(rng);
        let mut total = 0.0;
        for batch in order.chunks(self.config.batch_size.max(1)) {
            let mut acc: Option<Vec<ged_linalg::Matrix>> = None;
            for &i in batch {
                let tape = Tape::new();
                let binds = self.store.bind(&tape);
                let loss = self.pair_loss(&tape, &binds, &pairs[i]);
                total += tape.scalar_value(loss);
                tape.backward(loss);
                let grads = self.store.gradients(&tape, &binds);
                match &mut acc {
                    Some(a) => {
                        for (x, g) in a.iter_mut().zip(&grads) {
                            x.add_scaled_assign(g, 1.0);
                        }
                    }
                    None => acc = Some(grads),
                }
            }
            if let Some(mut a) = acc {
                let s = 1.0 / batch.len() as f64;
                for g in &mut a {
                    *g = g.scale(s);
                }
                self.adam.step(&mut self.store, &a);
            }
        }
        total / pairs.len().max(1) as f64
    }

    /// Trains for several epochs.
    pub fn train<R: Rng>(&mut self, pairs: &[GedPair], epochs: usize, rng: &mut R) -> Vec<f64> {
        (0..epochs).map(|_| self.train_epoch(pairs, rng)).collect()
    }

    /// Predicts the GED as the sum of the four denormalized type counts.
    #[must_use]
    pub fn predict(&self, g1: &Graph, g2: &Graph) -> f64 {
        let (a, b, _) = ordered(g1, g2);
        let tape = Tape::new();
        let binds = self.store.bind(&tape);
        let scores = self.forward(&tape, &binds, a, b);
        let denom = max_edit_ops(a, b) as f64;
        scores.iter().map(|&s| tape.scalar_value(s) * denom).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_graph::generate;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn type_counts_sum_to_induced_cost() {
        let mut rng = SmallRng::seed_from_u64(111);
        for _ in 0..25 {
            let g = generate::random_connected(6, 2, &[0.5, 0.3, 0.2], &mut rng);
            let p = generate::perturb_with_edits(&g, 3, 3, &mut rng);
            let counts = TypeCounts::from_mapping(&g, &p.graph, &p.mapping);
            assert_eq!(counts.total(), p.mapping.induced_cost(&g, &p.graph));
        }
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = SmallRng::seed_from_u64(112);
        let data: Vec<GedPair> = (0..20)
            .map(|i| {
                let g = generate::random_connected(5, 1, &[0.5, 0.5], &mut rng);
                let p = generate::perturb_with_edits(&g, 1 + i % 3, 2, &mut rng);
                GedPair::supervised(g, p.graph, p.applied as f64, p.mapping)
            })
            .collect();
        let mut cfg = TagSimConfig::small(2);
        cfg.learning_rate = 5e-3;
        let mut model = TagSim::new(cfg, &mut rng);
        let losses = model.train(&data, 6, &mut rng);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "{losses:?}"
        );
    }

    #[test]
    fn prediction_bounded_by_max_ops() {
        let mut rng = SmallRng::seed_from_u64(113);
        let model = TagSim::new(TagSimConfig::small(2), &mut rng);
        let g1 = generate::random_connected(4, 1, &[0.5, 0.5], &mut rng);
        let g2 = generate::random_connected(7, 2, &[0.5, 0.5], &mut rng);
        let pred = model.predict(&g1, &g2);
        // Four sigmoid heads, each bounded by denom: total <= 4 * denom.
        assert!(pred >= 0.0 && pred <= 4.0 * max_edit_ops(&g1, &g2) as f64);
    }
}
