//! In-process `ged-served` harness: a real [`Server`] served over a
//! socketpair, plus a scripted line-oriented client.
//!
//! [`serve_in_process`] builds a server from a [`ServerConfig`] and
//! connects one [`ServedClient`] to it; [`connect`] opens additional
//! concurrent connections to the same server (each gets its own serving
//! thread, exactly like a Unix-socket connection of the real daemon —
//! in fact each goes through [`Server::serve_stream`], so shutdown
//! semantics are identical too).

use ged_server::codec::{encode_request, parse_response};
use ged_server::protocol::{Request, Response};
use ged_server::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::thread::JoinHandle;

/// A scripted client talking to an in-process [`Server`] over a
/// socketpair. Dropping the client closes its write half (the server
/// side sees EOF) and joins the serving thread.
pub struct ServedClient {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
    thread: Option<JoinHandle<()>>,
}

/// Builds a server for `config` and connects one client to it.
///
/// # Panics
/// Panics if the configuration is rejected by the engine builder.
#[must_use]
pub fn serve_in_process(config: &ServerConfig) -> (Server, ServedClient) {
    let server = Server::new(config).expect("valid server config");
    let client = connect(&server);
    (server, client)
}

/// Opens one more connection to `server`, served on its own thread.
///
/// # Panics
/// Panics if the socketpair cannot be created.
#[must_use]
pub fn connect(server: &Server) -> ServedClient {
    let (client_side, server_side) = UnixStream::pair().expect("socketpair");
    let server = server.clone();
    let thread = std::thread::spawn(move || server.serve_stream(server_side));
    let reader = BufReader::new(client_side.try_clone().expect("clone client socket"));
    ServedClient {
        writer: client_side,
        reader,
        thread: Some(thread),
    }
}

impl ServedClient {
    /// Writes one raw request line without waiting for the response
    /// (pipelining). The newline is appended here.
    ///
    /// # Panics
    /// Panics if the connection is closed.
    pub fn send_line(&mut self, line: &str) {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .expect("server connection open");
    }

    /// Reads one response line (newline stripped), or `None` on EOF.
    pub fn recv_line(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) | Err(_) => None,
            Ok(_) => Some(line.trim_end_matches(['\n', '\r']).to_string()),
        }
    }

    /// Sends one raw line and waits for its response line.
    ///
    /// # Panics
    /// Panics if the server closes the connection without answering.
    pub fn request_line(&mut self, line: &str) -> String {
        self.send_line(line);
        self.recv_line().expect("a response line")
    }

    /// Sends a typed request and parses the typed response.
    ///
    /// # Panics
    /// Panics on connection loss or a response the codec rejects.
    pub fn call(&mut self, req: &Request) -> Response {
        let line = self.request_line(&encode_request(req));
        parse_response(&line).expect("a well-formed response")
    }

    /// Pipelines all requests (written back-to-back before any read),
    /// then collects their responses in order.
    ///
    /// # Panics
    /// Panics on connection loss or a response the codec rejects.
    pub fn pipeline(&mut self, reqs: &[Request]) -> Vec<Response> {
        for req in reqs {
            self.send_line(&encode_request(req));
        }
        reqs.iter()
            .map(|_| {
                let line = self.recv_line().expect("a response line");
                parse_response(&line).expect("a well-formed response")
            })
            .collect()
    }

    /// Closes the write half so the server sees EOF, then joins the
    /// serving thread.
    ///
    /// # Panics
    /// Panics if the serving thread panicked.
    pub fn close(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        let _ = self.writer.shutdown(std::net::Shutdown::Write);
        if let Some(t) = self.thread.take() {
            t.join().expect("serving thread");
        }
    }
}

impl Drop for ServedClient {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}
