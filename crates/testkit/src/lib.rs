//! Shared test harness for the `ot-ged` workspace: deterministic
//! store/dataset builders, seeded RNG fixtures, engine constructors over
//! the training-free solvers, and the brute-force oracles every
//! filter–verify search plan must reproduce exactly.
//!
//! The integration suites (`tests/engine.rs`, `tests/store_search.rs`,
//! `tests/pivot_search.rs`) had accreted copy-pasted store builders and
//! per-file brute-force scans; this crate is their single home. Every
//! fixture is seeded, so each helper returns bit-identical data on every
//! call, in every test binary, at any thread count.
//!
//! # Oracles
//!
//! * [`brute_force_refined`] — the full bound-refined ranking the
//!   approximate plans (`TopK` / `Range`) must equal: one solver call
//!   per stored graph, each prediction clamped into the admissible
//!   bound interval the engine applies, sorted by `(ged, id)`.
//! * [`brute_top_k`] / [`brute_range`] — the same ranking truncated /
//!   thresholded exactly like the engine's queries.
//! * [`brute_range_exact`] — the τ-bounded **exact** scan
//!   (`GedQuery::RangeExact` ground truth): every stored graph searched
//!   directly, ascending id order.
//!
//! The approximate oracles take the engine's pivot bounds
//! ([`ged_core::engine::GedEngine::pivot_bounds`]) as an `Option` so one
//! oracle covers both the signature-only plan (`None` — the classic
//! `max(prediction, lb)` refinement) and the pivot plan (`Some` — the
//! two-sided `min(max(prediction, lb), ub)` refinement).
//!
//! Every oracle has a `_sharded` twin over [`ged_graph::ShardedStore`]
//! (taking [`ged_core::engine::GedEngine::sharded_pivot_bounds`] for the
//! pivot plans), and [`sharded_copy`] builds a sharded replica of a flat
//! store together with the id translation the comparisons need.

#![warn(missing_docs)]

pub mod served;

use ged_baselines::solvers::ClassicSolver;
use ged_core::engine::{ExactNeighbor, GedEngine, GedEngineBuilder, JoinPair, Neighbor};
use ged_core::lower_bound::{degree_sequence_lower_bound, label_set_lower_bound};
use ged_core::method::MethodKind;
use ged_core::pairs::GedPair;
use ged_core::search::bounded_exact_ged;
use ged_core::solver::{
    GedEstimate, GedSolver, GedgwSolver, PathEstimate, SolverRegistry, SolverScratch,
};
use ged_graph::{Graph, GraphDataset, GraphId, GraphStore, ShardedStore};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The canonical seed of the property-test stores ([`property_stores`]).
pub const PROPERTY_SEED: u64 = 20_270_101;

/// The engine's per-candidate pivot bounds, as returned by
/// [`ged_core::engine::GedEngine::pivot_bounds`].
pub type PivotBounds = BTreeMap<GraphId, (usize, usize)>;

/// A deterministically seeded RNG — the single fixture every builder
/// below derives from.
#[must_use]
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// A `count`-graph AIDS-like store (labeled sparse compound graphs —
/// the label-set filter tier bites).
#[must_use]
pub fn aids_store(count: usize, seed: u64) -> GraphDataset {
    GraphDataset::aids_like(count, &mut rng(seed))
}

/// A `count`-graph LINUX-like store (unlabeled sparse graphs — only the
/// structural bounds can prune).
#[must_use]
pub fn linux_store(count: usize, seed: u64) -> GraphDataset {
    GraphDataset::linux_like(count, &mut rng(seed))
}

/// The two stores the property suites sweep: a 60-graph AIDS-like and a
/// 50-graph LINUX-like dataset, drawn from one [`PROPERTY_SEED`] stream
/// (bit-identical on every call).
#[must_use]
pub fn property_stores() -> Vec<GraphDataset> {
    let mut rng = rng(PROPERTY_SEED);
    vec![
        GraphDataset::aids_like(60, &mut rng),
        GraphDataset::linux_like(50, &mut rng),
    ]
}

/// One AIDS-like query graph that is a member of no store built by the
/// helpers above (a fresh seed stream per call site keeps queries and
/// stores independent).
#[must_use]
pub fn external_query(seed: u64) -> Graph {
    GraphDataset::aids_like(1, &mut rng(seed))
        .graphs()
        .next()
        .expect("one graph")
        .clone()
}

/// A boxed solver for the training-free methods the suites sweep.
///
/// # Panics
/// Panics for methods that would require model training — tests stick to
/// GEDGW and Classic on purpose.
#[must_use]
pub fn solver_for(method: MethodKind) -> Box<dyn GedSolver> {
    match method {
        MethodKind::Gedgw => Box::new(GedgwSolver),
        MethodKind::Classic => Box::new(ClassicSolver),
        other => panic!("ged-testkit only covers training-free methods, not {other}"),
    }
}

/// A builder over a registry holding the given training-free methods
/// (see [`solver_for`]) — tweak threads / pivots / budgets, then
/// `build()`. The first listed method becomes the default.
#[must_use]
pub fn engine_builder(methods: &[MethodKind]) -> GedEngineBuilder {
    let mut registry = SolverRegistry::new();
    for &m in methods {
        registry.register(m, solver_for(m));
    }
    let mut builder = GedEngine::builder(registry);
    if let Some(&first) = methods.first() {
        builder = builder.method(first);
    }
    builder
}

/// A [`GedgwSolver`] that counts its prediction calls — the probe the
/// planner suites and benches use to show an adaptive plan performs
/// **strictly not more** solver work than the static plan while staying
/// bit-identical.
///
/// Both [`GedSolver::predict`] and [`GedSolver::predict_scratch`] bump
/// the same shared counter (the engine's batched drivers call either),
/// and both delegate to the real GEDGW solver, so every result — and
/// therefore every search answer — is bit-identical to the stock
/// engine's. Clone the handle from [`CountingSolver::calls`] before
/// registering the solver; the count survives the move into the
/// registry.
pub struct CountingSolver {
    calls: Arc<AtomicUsize>,
}

impl CountingSolver {
    /// A fresh counter at zero.
    #[must_use]
    pub fn new() -> Self {
        CountingSolver {
            calls: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// The shared call counter (reads stay valid after the solver moves
    /// into a [`SolverRegistry`]).
    #[must_use]
    pub fn calls(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.calls)
    }
}

impl Default for CountingSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl GedSolver for CountingSolver {
    fn name(&self) -> &str {
        "GEDGW"
    }

    fn predict(&self, pair: &GedPair) -> GedEstimate {
        self.calls.fetch_add(1, Ordering::Relaxed);
        GedgwSolver.predict(pair)
    }

    fn predict_scratch(&self, pair: &GedPair, scratch: &mut SolverScratch) -> GedEstimate {
        self.calls.fetch_add(1, Ordering::Relaxed);
        GedgwSolver.predict_scratch(pair, scratch)
    }

    fn edit_path(&self, pair: &GedPair, k: usize) -> Option<PathEstimate> {
        GedgwSolver.edit_path(pair, k)
    }
}

/// A builder over a registry holding a single [`CountingSolver`]
/// registered as GEDGW, plus the shared call counter. Results are
/// bit-identical to [`engine_builder`]`(&[MethodKind::Gedgw])`; only
/// the counter is extra.
#[must_use]
pub fn counting_engine_builder() -> (GedEngineBuilder, Arc<AtomicUsize>) {
    let solver = CountingSolver::new();
    let calls = solver.calls();
    let mut registry = SolverRegistry::new();
    registry.register(MethodKind::Gedgw, Box::new(solver));
    let builder = GedEngine::builder(registry).method(MethodKind::Gedgw);
    (builder, calls)
}

/// The standard single-method engine of the suites: GEDGW, `threads`
/// worker threads, no pivots.
#[must_use]
pub fn gedgw_engine(threads: usize) -> GedEngine {
    engine_builder(&[MethodKind::Gedgw])
        .threads(threads)
        .build()
        .expect("GEDGW is registered")
}

/// The two-method engine the method-sweep properties use (GEDGW default,
/// Classic registered alongside).
#[must_use]
pub fn gedgw_classic_engine() -> GedEngine {
    engine_builder(&[MethodKind::Gedgw, MethodKind::Classic])
        .build()
        .expect("both methods are registered")
}

/// The brute-force reference a filter–verify search must reproduce
/// exactly: evaluate every stored graph directly on the solver, refine
/// each prediction into the admissible bound interval the engine applies
/// — `max(prediction, lb)` against the signature lower bounds, further
/// clamped into the pivot `[lb, ub]` interval when `pivot` carries one —
/// and sort by `(ged, id)`.
#[must_use]
pub fn brute_force_refined(
    store: &GraphStore,
    query: &Graph,
    solver: &dyn GedSolver,
    pivot: Option<&PivotBounds>,
) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = store
        .iter()
        .map(|(id, g)| {
            let pair = GedPair::new(query.clone(), g.clone());
            let mut lb = label_set_lower_bound(query, g).max(degree_sequence_lower_bound(query, g));
            let mut ub = usize::MAX;
            if let Some((plb, pub_)) = pivot.and_then(|m| m.get(&id).copied()) {
                lb = lb.max(plb);
                ub = pub_;
            }
            Neighbor {
                id,
                ged: solver.predict(&pair).ged.max(lb as f64).min(ub as f64),
            }
        })
        .collect();
    all.sort_by(|a, b| a.ged.total_cmp(&b.ged).then(a.id.cmp(&b.id)));
    all
}

/// [`brute_force_refined`] truncated to the `k` nearest neighbors —
/// exactly what `GedQuery::TopK` promises (`k` beyond the store clamps).
#[must_use]
pub fn brute_top_k(
    store: &GraphStore,
    query: &Graph,
    solver: &dyn GedSolver,
    k: usize,
    pivot: Option<&PivotBounds>,
) -> Vec<Neighbor> {
    let mut all = brute_force_refined(store, query, solver, pivot);
    all.truncate(k);
    all
}

/// [`brute_force_refined`] thresholded at `tau` — exactly what
/// `GedQuery::Range` promises.
#[must_use]
pub fn brute_range(
    store: &GraphStore,
    query: &Graph,
    solver: &dyn GedSolver,
    tau: f64,
    pivot: Option<&PivotBounds>,
) -> Vec<Neighbor> {
    brute_force_refined(store, query, solver, pivot)
        .into_iter()
        .filter(|n| n.ged <= tau)
        .collect()
}

/// The brute-force reference for exact range search: the τ-bounded exact
/// search run against every stored graph, in ascending id order —
/// exactly what `GedQuery::RangeExact` promises (for any pivot
/// configuration and any thread count).
#[must_use]
pub fn brute_range_exact(store: &GraphStore, query: &Graph, tau: usize) -> Vec<ExactNeighbor> {
    store
        .iter()
        .filter_map(|(id, g)| bounded_exact_ged(query, g, tau).map(|ged| ExactNeighbor { id, ged }))
        .collect()
}

/// The brute-force self-join ground truth: the τ-bounded exact search
/// run against every unordered pair of stored graphs, in ascending
/// `(a, b)` id order — exactly what `GedQuery::SelfJoin` promises (for
/// any store kind, pivot configuration, planner state, and thread
/// count) under an unlimited verify budget.
#[must_use]
pub fn brute_self_join(store: &GraphStore, tau: usize) -> Vec<JoinPair> {
    let entries: Vec<(GraphId, &Graph)> = store.iter().collect();
    let mut out = Vec::new();
    for (i, &(a, ga)) in entries.iter().enumerate() {
        for &(b, gb) in &entries[i + 1..] {
            if let Some(ged) = bounded_exact_ged(ga, gb, tau) {
                out.push(JoinPair { a, b, ged });
            }
        }
    }
    out
}

/// The brute-force cross-store join ground truth: the τ-bounded exact
/// search over the full `left × right` product (all `n·m` ordered
/// pairs, diagonal included when the stores overlap), in ascending
/// `(a, b)` order — exactly what `GedQuery::Join` promises under an
/// unlimited verify budget.
#[must_use]
pub fn brute_join(left: &GraphStore, right: &GraphStore, tau: usize) -> Vec<JoinPair> {
    let mut out = Vec::new();
    for (a, ga) in left.iter() {
        for (b, gb) in right.iter() {
            if let Some(ged) = bounded_exact_ged(ga, gb, tau) {
                out.push(JoinPair { a, b, ged });
            }
        }
    }
    out
}

/// A sharded copy of `store` at the given bucket width, plus the
/// flat-id → sharded-id translation (GraphIds are process-global mints,
/// so the copy necessarily carries fresh ids). Graphs are inserted in
/// the flat store's id order, making the translation — and therefore
/// every flat-vs-sharded comparison — deterministic.
#[must_use]
pub fn sharded_copy(
    store: &GraphStore,
    bucket_width: usize,
) -> (ShardedStore, BTreeMap<GraphId, GraphId>) {
    let mut sharded = ShardedStore::new(bucket_width);
    let map = store
        .iter()
        .map(|(flat_id, g)| (flat_id, sharded.insert(g.clone())))
        .collect();
    (sharded, map)
}

/// [`brute_force_refined`] over a [`ShardedStore`]: identical refinement
/// (clamp into signature bounds, then into the per-id pivot interval when
/// `pivot` carries one — pass
/// [`ged_core::engine::GedEngine::sharded_pivot_bounds`]), identical
/// `(ged, id)` order. The sharded plans must reproduce this bit for bit.
#[must_use]
pub fn brute_force_refined_sharded(
    store: &ShardedStore,
    query: &Graph,
    solver: &dyn GedSolver,
    pivot: Option<&PivotBounds>,
) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = store
        .iter()
        .map(|(id, g)| {
            let pair = GedPair::new(query.clone(), g.clone());
            let mut lb = label_set_lower_bound(query, g).max(degree_sequence_lower_bound(query, g));
            let mut ub = usize::MAX;
            if let Some((plb, pub_)) = pivot.and_then(|m| m.get(&id).copied()) {
                lb = lb.max(plb);
                ub = pub_;
            }
            Neighbor {
                id,
                ged: solver.predict(&pair).ged.max(lb as f64).min(ub as f64),
            }
        })
        .collect();
    all.sort_by(|a, b| a.ged.total_cmp(&b.ged).then(a.id.cmp(&b.id)));
    all
}

/// [`brute_force_refined_sharded`] truncated to the `k` nearest —
/// the `top_k_sharded` ground truth.
#[must_use]
pub fn brute_top_k_sharded(
    store: &ShardedStore,
    query: &Graph,
    solver: &dyn GedSolver,
    k: usize,
    pivot: Option<&PivotBounds>,
) -> Vec<Neighbor> {
    let mut all = brute_force_refined_sharded(store, query, solver, pivot);
    all.truncate(k);
    all
}

/// [`brute_force_refined_sharded`] thresholded at `tau` — the
/// `range_sharded` ground truth.
#[must_use]
pub fn brute_range_sharded(
    store: &ShardedStore,
    query: &Graph,
    solver: &dyn GedSolver,
    tau: f64,
    pivot: Option<&PivotBounds>,
) -> Vec<Neighbor> {
    brute_force_refined_sharded(store, query, solver, pivot)
        .into_iter()
        .filter(|n| n.ged <= tau)
        .collect()
}

/// The τ-bounded exact scan over a [`ShardedStore`] in globally
/// ascending id order — the `range_exact_sharded` ground truth (for any
/// bucket width, pivot configuration, and thread count).
#[must_use]
pub fn brute_range_exact_sharded(
    store: &ShardedStore,
    query: &Graph,
    tau: usize,
) -> Vec<ExactNeighbor> {
    store
        .iter()
        .filter_map(|(id, g)| bounded_exact_ged(query, g, tau).map(|ged| ExactNeighbor { id, ged }))
        .collect()
}

/// Asserts two neighbor lists are bit-identical (ids, order, and the
/// exact f64 bits of every distance).
///
/// # Panics
/// Panics with `ctx` on the first divergence.
pub fn assert_same_neighbors(got: &[Neighbor], want: &[Neighbor], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: result size");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.id, w.id, "{ctx}: id order");
        assert_eq!(g.ged.to_bits(), w.ged.to_bits(), "{ctx}: value at {}", g.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let a = property_stores();
        let b = property_stores();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            // GraphIds are process-global (never reused), so only the
            // *content* repeats across calls — not the id values.
            assert_eq!(x.len(), y.len());
            for (gx, gy) in x.graphs().zip(y.graphs()) {
                assert_eq!(gx, gy, "graphs are bit-identical across calls");
            }
        }
        assert_eq!(external_query(7), external_query(7));
        assert_eq!(aids_store(5, 3).len(), 5);
        assert_eq!(linux_store(4, 3).len(), 4);
    }

    #[test]
    fn property_stores_have_the_contracted_shape() {
        let stores = property_stores();
        assert_eq!(stores[0].len(), 60, "AIDS-like store");
        assert_eq!(stores[1].len(), 50, "LINUX-like store");
        assert!(stores[0].len() >= 50 && stores[1].len() >= 50);
    }

    #[test]
    fn brute_force_refined_is_sorted_and_complete() {
        let ds = aids_store(12, 11);
        let query = external_query(12);
        let ranking = brute_force_refined(&ds, &query, &GedgwSolver, None);
        assert_eq!(ranking.len(), ds.len());
        for w in ranking.windows(2) {
            assert!(
                w[0].ged < w[1].ged || (w[0].ged == w[1].ged && w[0].id < w[1].id),
                "(ged, id) order"
            );
        }
        // Refinement: every value respects the admissible lower bound.
        for n in &ranking {
            let g = ds.get(n.id).unwrap();
            let lb = label_set_lower_bound(&query, g).max(degree_sequence_lower_bound(&query, g));
            assert!(n.ged >= lb as f64);
        }
        // top-k / range are plain views of the same ranking.
        assert_eq!(
            brute_top_k(&ds, &query, &GedgwSolver, 3, None),
            ranking[..3]
        );
        let tau = ranking[4].ged;
        let within = brute_range(&ds, &query, &GedgwSolver, tau, None);
        assert!(within.iter().all(|n| n.ged <= tau));
        assert!(within.len() >= 5);
    }

    #[test]
    fn pivot_bounds_clamp_the_refined_ranking() {
        let ds = aids_store(10, 21);
        let query = ds.graphs().next().unwrap().clone();
        // A fake — but sound — pivot table: exact two-sided bounds.
        let bounds: PivotBounds = ds
            .iter()
            .map(|(id, g)| {
                let d = bounded_exact_ged(&query, g, usize::MAX / 2).unwrap();
                (id, (d, d))
            })
            .collect();
        let clamped = brute_force_refined(&ds, &query, &GedgwSolver, Some(&bounds));
        for n in &clamped {
            let (lb, ub) = bounds[&n.id];
            assert!(
                n.ged >= lb as f64 && n.ged <= ub as f64,
                "clamped into [lb, ub]"
            );
        }
    }

    #[test]
    fn brute_range_exact_is_id_ordered_ground_truth() {
        let ds = aids_store(10, 31);
        let query = ds.graphs().next().unwrap().clone();
        let hits = brute_range_exact(&ds, &query, 3);
        assert!(
            hits.iter().any(|m| m.ged == 0),
            "the member query matches itself"
        );
        for w in hits.windows(2) {
            assert!(w[0].id < w[1].id, "ascending id order");
        }
        for m in &hits {
            assert!(m.ged <= 3);
            let g = ds.get(m.id).unwrap();
            assert_eq!(bounded_exact_ged(&query, g, 3), Some(m.ged));
        }
    }

    #[test]
    fn sharded_copy_preserves_content_and_oracle_agreement() {
        let ds = aids_store(14, 41);
        let query = external_query(42);
        let (sharded, map) = sharded_copy(&ds, 4);
        assert_eq!(sharded.len(), ds.len());
        assert!(sharded.shard_count() > 1, "width 4 splits an AIDS store");
        for (flat_id, g) in ds.iter() {
            assert_eq!(sharded.get(map[&flat_id]), Some(g), "same graph bits");
        }
        // The sharded oracle is the flat oracle under id translation.
        let flat = brute_force_refined(&ds, &query, &GedgwSolver, None);
        let shard = brute_force_refined_sharded(&sharded, &query, &GedgwSolver, None);
        let translated: Vec<Neighbor> = flat
            .iter()
            .map(|n| Neighbor {
                id: map[&n.id],
                ged: n.ged,
            })
            .collect();
        // Translation preserves relative id order (both mints are
        // insertion-ordered), so the (ged, id) sort is unchanged.
        assert_same_neighbors(&shard, &translated, "sharded oracle");
        let exact_flat = brute_range_exact(&ds, &query, 6);
        let exact_shard = brute_range_exact_sharded(&sharded, &query, 6);
        assert_eq!(exact_flat.len(), exact_shard.len());
        for (f, s) in exact_flat.iter().zip(&exact_shard) {
            assert_eq!(map[&f.id], s.id);
            assert_eq!(f.ged, s.ged);
        }
    }

    #[test]
    fn counting_solver_counts_and_matches_gedgw_bitwise() {
        let ds = aids_store(6, 51);
        let query = external_query(52);
        let (builder, calls) = counting_engine_builder();
        let counted = builder.build().expect("GEDGW is registered");
        let stock = gedgw_engine(1);
        let a = counted.top_k(&query, &ds, 3).unwrap();
        let b = stock.top_k(&query, &ds, 3).unwrap();
        assert_same_neighbors(&a.neighbors, &b.neighbors, "counted vs stock");
        assert_eq!(
            calls.load(Ordering::Relaxed),
            a.stats.verified,
            "one prediction per verified candidate"
        );
    }

    #[test]
    fn engine_builders_cover_the_training_free_methods() {
        let e = gedgw_engine(2);
        assert_eq!(e.method(), MethodKind::Gedgw);
        let e2 = gedgw_classic_engine();
        assert_eq!(e2.method(), MethodKind::Gedgw);
        assert_eq!(
            e2.methods(),
            vec![MethodKind::Gedgw, MethodKind::Classic],
            "registration order"
        );
    }
}
