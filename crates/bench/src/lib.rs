//! Criterion micro-benchmarks for the `ot-ged` kernels.
//!
//! The benches regenerate the *time* columns of the paper's tables and
//! figures at micro scale; run them with `cargo bench`. See DESIGN.md §3
//! for the mapping from bench groups to tables/figures.
