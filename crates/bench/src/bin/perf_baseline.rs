//! Committed performance baseline for the hot kernels and search plans.
//!
//! Runs deterministic quick-mode versions of the `kernels`, `fig_search`,
//! `fig_exact_search`, and `fig_pivot` workloads and writes
//! `BENCH_kernels.json` / `BENCH_search.json` (median ns per op, workload
//! params, git rev) to the current directory — the repo root when invoked
//! as `cargo run -p ged-bench --bin perf_baseline --release`.
//!
//! The JSON files are committed so every perf PR has an observable
//! before/after trajectory; regenerate them after any change to the
//! kernels or plans. `--smoke` runs tiny sizes and writes under `target/`
//! (CI uses it to keep the binary and schema green without touching the
//! committed numbers).

use ged_baselines::astar::astar_beam;
use ged_core::engine::GedEngine;
use ged_core::gedgw::Gedgw;
use ged_core::kbest::kbest_edit_path;
use ged_core::method::MethodKind;
use ged_core::pairs::GedPair;
use ged_core::search::similarity_search;
use ged_core::solver::{BatchRunner, GedgwSolver, SolverRegistry};
use ged_graph::{generate, Graph, GraphDataset, ShardedStore};
use ged_linalg::{lsap_min, lsap_min_munkres, Matrix};
use ged_ot::gw::gw_tensor_apply;
use ged_ot::sinkhorn::{sinkhorn, sinkhorn_dummy_row};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Samples per workload; the reported number is their median.
const SAMPLES: usize = 9;

struct Measurement {
    name: &'static str,
    params: String,
    median_ns_per_op: u128,
    ops_per_sample: usize,
}

/// Times `iters` consecutive runs of `f`, `SAMPLES` times (plus one
/// discarded warmup), and returns the median ns-per-op measurement.
fn measure<F: FnMut()>(name: &'static str, params: String, iters: usize, mut f: F) -> Measurement {
    let mut per_op: Vec<u128> = Vec::with_capacity(SAMPLES);
    for sample in 0..=SAMPLES {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = start.elapsed().as_nanos() / iters as u128;
        if sample > 0 {
            // Sample 0 is warmup.
            per_op.push(ns);
        }
    }
    per_op.sort_unstable();
    let median = per_op[per_op.len() / 2];
    eprintln!("  {name:<28} {median:>12} ns/op   [{params}]");
    Measurement {
        name,
        params,
        median_ns_per_op: median,
        ops_per_sample: iters,
    }
}

fn rand_matrix(n: usize, m: usize, seed: u64) -> Matrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    Matrix::from_fn(n, m, |_, _| rng.gen_range(0.0..2.0))
}

fn rand_adjacency(n: usize, seed: u64) -> Matrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(0.3) {
                a[(i, j)] = 1.0;
                a[(j, i)] = 1.0;
            }
        }
    }
    a
}

fn gedgw_engine(pivots: usize) -> GedEngine {
    let mut registry = SolverRegistry::new();
    registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
    GedEngine::builder(registry)
        .threads(1) // isolate plan cost from parallel speedup
        .pivots(pivots)
        .build()
        .expect("GEDGW is registered")
}

fn kernels_suite(smoke: bool) -> Vec<Measurement> {
    eprintln!("kernels:");
    let mut out = Vec::new();

    // Mirrors the `kernels` criterion bench: Sinkhorn, LSAP, L ⊗ π.
    let n = if smoke { 8 } else { 30 };
    let cost = rand_matrix(n, n, 1);
    let mu = vec![1.0; n];
    let nu = vec![1.0; n];
    out.push(measure(
        "sinkhorn_balanced",
        format!("n={n},eps=0.05,iters=5"),
        50,
        || {
            black_box(sinkhorn(&cost, &mu, &nu, 0.05, 5));
        },
    ));

    let rect = rand_matrix(n, n + n / 2, 2);
    out.push(measure(
        "sinkhorn_dummy_row",
        format!("n={n},m={},eps=0.05,iters=5", n + n / 2),
        50,
        || {
            black_box(sinkhorn_dummy_row(&rect, 0.05, 5));
        },
    ));

    let n = if smoke { 10 } else { 50 };
    let lsap_cost = rand_matrix(n, n, 3);
    out.push(measure(
        "lsap_jonker_volgenant",
        format!("n={n}"),
        50,
        || {
            black_box(lsap_min(&lsap_cost));
        },
    ));
    out.push(measure("lsap_munkres", format!("n={n}"), 20, || {
        black_box(lsap_min_munkres(&lsap_cost));
    }));

    let n = if smoke { 10 } else { 60 };
    let a1 = rand_adjacency(n, 4);
    let a2 = rand_adjacency(n, 5);
    let pi = rand_matrix(n, n, 6).scale(1.0 / n as f64);
    out.push(measure("gw_tensor_fast", format!("n={n}"), 50, || {
        black_box(gw_tensor_apply(&a1, &a2, &pi));
    }));

    // The batched workload the workspace layer targets: one GEDGW solve
    // per pair through the BatchRunner seam.
    let pairs_n = if smoke { 8 } else { 64 };
    let mut rng = SmallRng::seed_from_u64(6_000);
    let store = GraphDataset::aids_like(2 * pairs_n, &mut rng).into_store();
    let graphs: Vec<_> = store.graphs().cloned().collect();
    let pairs: Vec<GedPair> = graphs
        .chunks_exact(2)
        .map(|c| GedPair::new(c[0].clone(), c[1].clone()))
        .collect();
    let runner = BatchRunner::new(1);
    out.push(measure(
        "gedgw_batch_predict",
        format!("pairs={pairs_n},threads=1,dataset=aids_like"),
        1,
        || {
            black_box(runner.predict_batch(&GedgwSolver, &pairs));
        },
    ));

    // The edit-path generators the workspace layer targets: k-best
    // matching over precomputed GEDGW couplings, and the A*-Beam
    // baseline (mirrors `table4_paths` / `fig15_exact`).
    let path_pairs = if smoke { 2 } else { 8 };
    let kbest_k = if smoke { 5 } else { 50 };
    let beam = if smoke { 20 } else { 100 };
    let mut rng = SmallRng::seed_from_u64(11);
    let weights: Vec<f64> = (0..29).map(|i| 1.0 / (1.0 + i as f64).powf(1.4)).collect();
    let data: Vec<(Graph, Graph)> = (0..path_pairs)
        .map(|_| {
            (
                generate::random_connected(8, 2, &weights, &mut rng),
                generate::random_connected(10, 3, &weights, &mut rng),
            )
        })
        .collect();
    let couplings: Vec<_> = data
        .iter()
        .map(|(g1, g2)| Gedgw::new(g1, g2).solve().coupling)
        .collect();
    out.push(measure(
        "kbest_edit_path",
        format!("pairs={path_pairs},k={kbest_k},n=8/10"),
        5,
        || {
            for ((g1, g2), pi) in data.iter().zip(&couplings) {
                black_box(kbest_edit_path(g1, g2, pi, kbest_k).ged);
            }
        },
    ));
    out.push(measure(
        "astar_beam",
        format!("pairs={path_pairs},beam={beam},n=8/10"),
        5,
        || {
            for (g1, g2) in &data {
                black_box(astar_beam(g1, g2, beam).ged);
            }
        },
    ));

    out
}

fn search_suite(smoke: bool) -> Vec<Measurement> {
    eprintln!("search:");
    let mut out = Vec::new();
    let size = if smoke { 12 } else { 100 };
    let tau = 4usize;

    // fig_search: top-k filter–verify (same seeds as the criterion bench).
    {
        let mut rng = SmallRng::seed_from_u64(7_000 + size as u64);
        let store = GraphDataset::aids_like(size, &mut rng).into_store();
        let query = store.graphs().next().expect("non-empty").clone();
        let engine = gedgw_engine(0);
        out.push(measure(
            "fig_search_topk",
            format!("store={size},k=5,threads=1"),
            1,
            || {
                black_box(engine.top_k(&query, &store, 5).expect("valid query"));
            },
        ));
    }

    // fig_exact_search: exact range search, three-tier plan.
    {
        let mut rng = SmallRng::seed_from_u64(8_000 + size as u64);
        let store = GraphDataset::aids_like(size, &mut rng).into_store();
        let query = store.graphs().next().expect("non-empty").clone();
        let engine = gedgw_engine(0);
        out.push(measure(
            "fig_exact_search_range",
            format!("store={size},tau={tau},threads=1"),
            1,
            || {
                black_box(
                    engine
                        .range_exact(&query, &store, tau as f64)
                        .expect("valid query"),
                );
            },
        ));
    }

    // fig_pivot: exact range search through the pivot index (warmed).
    {
        let pivots = if smoke { 2 } else { 4 };
        let mut rng = SmallRng::seed_from_u64(9_000 + size as u64);
        let store = GraphDataset::aids_like(size, &mut rng).into_store();
        let query = store.graphs().next().expect("non-empty").clone();
        let engine = gedgw_engine(pivots);
        // Build + sync the pivot table outside the timed region.
        let warm = engine
            .range_exact(&query, &store, tau as f64)
            .expect("valid query");
        assert_eq!(warm.stats.total(), store.len());
        out.push(measure(
            "fig_pivot_range_exact",
            format!("store={size},tau={tau},pivots={pivots},threads=1"),
            1,
            || {
                black_box(
                    engine
                        .range_exact(&query, &store, tau as f64)
                        .expect("valid query"),
                );
            },
        ));
    }

    // fig_shard: the sharded plans on size-heterogeneous data, where the
    // shard aggregate tier drops whole partitions before per-graph work.
    {
        // τ-bounded exact search on unlabeled ego-nets blows up past
        // τ≈2 (dense, label-free A* frontier), so the exact workload
        // pins tau=2 — the same regime tests/sharded_search.rs runs.
        let shard_tau = 2usize;
        let mut rng = SmallRng::seed_from_u64(11_000 + size as u64);
        let store = GraphDataset::imdb_like(size, 12, &mut rng);
        let mut sharded = ShardedStore::new(4);
        for (_, g) in store.iter() {
            sharded.insert(g.clone());
        }
        let query = store
            .graphs()
            .min_by_key(|g| g.num_nodes())
            .expect("non-empty")
            .clone();
        let engine = gedgw_engine(0);
        out.push(measure(
            "sharded_topk",
            format!("store={size},k=5,width=4,threads=1"),
            1,
            || {
                black_box(
                    engine
                        .top_k_sharded(&query, &sharded, 5)
                        .expect("valid query"),
                );
            },
        ));
        out.push(measure(
            "sharded_range_exact",
            format!("store={size},tau={shard_tau},width=4,threads=1"),
            1,
            || {
                black_box(
                    engine
                        .range_exact_sharded(&query, &sharded, shard_tau as f64)
                        .expect("valid query"),
                );
            },
        ));
    }

    // fig_planner: the adaptive planner on tight pivot intervals — the
    // query is a pivot-set member, so collapsed verification answers
    // without solver calls (warmed outside the timed region).
    {
        let pivots = if smoke { 2 } else { 4 };
        let mut rng = SmallRng::seed_from_u64(12_000 + size as u64);
        let store = GraphDataset::aids_like(size, &mut rng).into_store();
        let mut registry = SolverRegistry::new();
        registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
        let engine = GedEngine::builder(registry)
            .threads(1)
            .pivots(pivots)
            .adaptive_planner(true)
            .build()
            .expect("GEDGW is registered");
        let query = store
            .get(engine.pivot_ids(&store)[0])
            .expect("pivot is stored")
            .clone();
        for _ in 0..4 {
            let warm = engine.top_k(&query, &store, 5).expect("valid query");
            assert_eq!(warm.stats.candidates, store.len());
            let warm = engine
                .range_exact(&query, &store, tau as f64)
                .expect("valid query");
            assert_eq!(warm.stats.total(), store.len());
        }
        out.push(measure(
            "planner_topk",
            format!("store={size},k=5,pivots={pivots},adaptive=true,threads=1"),
            1,
            || {
                black_box(engine.top_k(&query, &store, 5).expect("valid query"));
            },
        ));
        out.push(measure(
            "planner_range_exact",
            format!("store={size},tau={tau},pivots={pivots},adaptive=true,threads=1"),
            1,
            || {
                black_box(
                    engine
                        .range_exact(&query, &store, tau as f64)
                        .expect("valid query"),
                );
            },
        ));
    }

    // fig_join: the shared-work join plans — one pivot arming and one
    // signature sort amortized over the whole candidate matrix, instead
    // of n·(n−1)/2 (resp. n·m) independent bounded searches.
    {
        let join_tau = 2usize;
        let pivots = if smoke { 2 } else { 3 };
        let probes_n = if smoke { 4 } else { 20 };
        let mut rng = SmallRng::seed_from_u64(13_000 + size as u64);
        let store = GraphDataset::aids_like(size, &mut rng).into_store();
        let probes = GraphDataset::aids_like(probes_n, &mut rng).into_store();
        let engine = gedgw_engine(pivots);
        // Arm the pivot index outside the timed region.
        let warm = engine
            .self_join(&store, join_tau as f64)
            .expect("valid join");
        assert_eq!(warm.stats.total(), store.len() * (store.len() - 1) / 2);
        out.push(measure(
            "self_join",
            format!("store={size},tau={join_tau},pivots={pivots},threads=1"),
            1,
            || {
                black_box(
                    engine
                        .self_join(&store, join_tau as f64)
                        .expect("valid join"),
                );
            },
        ));
        // Cross-join without pivots: the left store is not in the
        // pivot table, so arming it costs one unbounded exact search
        // per probe×pivot every call — on cheap-verify AIDS workloads
        // that dwarfs the τ-bounded verifications it saves. The
        // band/signature tiers are the cross-join's paying filters.
        let engine = gedgw_engine(0);
        out.push(measure(
            "cross_join",
            format!("left={probes_n},right={size},tau={join_tau},pivots=0,threads=1"),
            1,
            || {
                black_box(
                    engine
                        .join(&probes, &store, join_tau as f64)
                        .expect("valid join"),
                );
            },
        ));
    }

    // similarity_search: the per-pair slice form of the three-tier plan.
    {
        let mut rng = SmallRng::seed_from_u64(10_000 + size as u64);
        let store = GraphDataset::aids_like(size, &mut rng).into_store();
        let db: Vec<Graph> = store.graphs().cloned().collect();
        let query = db[0].clone();
        out.push(measure(
            "similarity_search",
            format!("db={size},tau={tau}"),
            1,
            || {
                black_box(similarity_search(&db, &query, tau));
            },
        ));
    }

    out
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map_or_else(|| "unknown".to_string(), |s| s.trim().to_string())
}

fn write_json(path: &Path, suite: &str, mode: &str, rev: &str, results: &[Measurement]) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": 1,\n");
    s.push_str(&format!("  \"suite\": \"{suite}\",\n"));
    s.push_str(&format!("  \"git_rev\": \"{rev}\",\n"));
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str(&format!("  \"samples\": {SAMPLES},\n"));
    s.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"params\": \"{}\", \"median_ns_per_op\": {}, \"ops_per_sample\": {}}}{}\n",
            m.name,
            m.params,
            m.median_ns_per_op,
            m.ops_per_sample,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_dir: PathBuf = args
        .iter()
        .position(|a| a == "--out-dir")
        .and_then(|i| args.get(i + 1))
        .map_or_else(
            || {
                if smoke {
                    PathBuf::from("target/perf_smoke")
                } else {
                    PathBuf::from(".")
                }
            },
            PathBuf::from,
        );
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let mode = if smoke { "smoke" } else { "quick" };
    let rev = git_rev();
    eprintln!("perf_baseline mode={mode} rev={rev}");

    let kernels = kernels_suite(smoke);
    write_json(
        &out_dir.join("BENCH_kernels.json"),
        "kernels",
        mode,
        &rev,
        &kernels,
    );

    let search = search_suite(smoke);
    write_json(
        &out_dir.join("BENCH_search.json"),
        "search",
        mode,
        &rev,
        &search,
    );
}
