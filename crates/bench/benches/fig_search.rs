//! Similarity-search throughput: brute-force top-k scans vs. the
//! engine's filter–verify plan at growing store sizes. The filter phase
//! reads only precomputed signatures, so its advantage widens with the
//! store — this bench makes the `SearchStats` savings visible as wall
//! clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ged_core::engine::GedEngine;
use ged_core::method::MethodKind;
use ged_core::pairs::GedPair;
use ged_core::solver::{GedSolver, GedgwSolver, SolverRegistry};
use ged_graph::{Graph, GraphDataset, GraphId, GraphStore};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

const TOP_K: usize = 5;

fn engine() -> GedEngine {
    let mut registry = SolverRegistry::new();
    registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
    GedEngine::builder(registry)
        .threads(1) // isolate plan cost from parallel speedup
        .build()
        .expect("GEDGW is registered")
}

/// The unindexed baseline: one solver call per stored graph, then sort.
fn brute_force_top_k(store: &GraphStore, query: &Graph, k: usize) -> Vec<(GraphId, f64)> {
    let mut all: Vec<(GraphId, f64)> = store
        .iter()
        .map(|(id, g)| {
            let pair = GedPair::new(query.clone(), g.clone());
            (id, GedgwSolver.predict(&pair).ged)
        })
        .collect();
    all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

fn bench_search(c: &mut Criterion) {
    let engine = engine();
    let mut group = c.benchmark_group("fig_search_topk");
    group.sample_size(10);
    for size in [25usize, 50, 100] {
        let mut rng = SmallRng::seed_from_u64(7_000 + size as u64);
        let store = GraphDataset::aids_like(size, &mut rng).into_store();
        let query = store.graphs().next().expect("non-empty").clone();

        group.bench_with_input(BenchmarkId::new("brute_force", size), &size, |b, _| {
            b.iter(|| black_box(brute_force_top_k(&store, &query, TOP_K)))
        });
        group.bench_with_input(BenchmarkId::new("filter_verify", size), &size, |b, _| {
            b.iter(|| {
                let result = engine.top_k(&query, &store, TOP_K).expect("valid query");
                black_box(result)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
