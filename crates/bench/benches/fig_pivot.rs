//! Pivot vs. signature-only filter–verify: exact range search over
//! growing stores with `p ∈ {0, 2, 4, 8}` pivots (`p = 0` is the plain
//! three-tier plan of `fig_exact_search`). The pivot table is built (and
//! amortized) outside the measurement loop — exactly the serving-store
//! scenario the index exists for — so the measured per-query cost is the
//! `p` query-to-pivot distances plus however much of the store the
//! triangle-inequality bounds decide search-free.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ged_core::engine::GedEngine;
use ged_core::method::MethodKind;
use ged_core::solver::{GedgwSolver, SolverRegistry};
use ged_graph::GraphDataset;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

const TAU: usize = 4;

fn engine(pivots: usize) -> GedEngine {
    let mut registry = SolverRegistry::new();
    registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
    GedEngine::builder(registry)
        .threads(1) // isolate plan cost from parallel speedup
        .pivots(pivots)
        .build()
        .expect("GEDGW is registered")
}

fn bench_pivot_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_pivot_range_exact");
    group.sample_size(10);
    for size in [25usize, 50, 100] {
        let mut rng = SmallRng::seed_from_u64(9_000 + size as u64);
        let store = GraphDataset::aids_like(size, &mut rng).into_store();
        let query = store.graphs().next().expect("non-empty").clone();

        for pivots in [0usize, 2, 4, 8] {
            let engine = engine(pivots);
            // Build + sync the pivot table outside the timed region.
            let warm = engine
                .range_exact(&query, &store, TAU as f64)
                .expect("valid query");
            assert_eq!(warm.stats.total(), store.len());
            group.bench_with_input(
                BenchmarkId::new(format!("p{pivots}"), size),
                &size,
                |b, _| {
                    b.iter(|| {
                        let result = engine
                            .range_exact(&query, &store, TAU as f64)
                            .expect("valid query");
                        black_box(result)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pivot_search);
criterion_main!(benches);
