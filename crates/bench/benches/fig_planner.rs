//! Static vs adaptive planner on skewed workloads. Two regimes:
//!
//! * **tight** — the query is drawn from the engine's own pivot set, so
//!   the pivot interval is tight (`lb == ub == exact GED`) for every
//!   stored graph and the adaptive planner's collapsed verification
//!   answers range / exact-range queries without a single solver call or
//!   bounded search. The static plan verifies every survivor.
//! * **dead-pivot** — a sharded store that is never pivot-synced, so the
//!   pivot bounds are vacuous and never fire. The warmed adaptive
//!   planner demotes the dead tier behind the cheaper signature bounds
//!   and skips arming it for exact range queries; the static plan keeps
//!   probing it per candidate.
//!
//! Both regimes assert bit-identical answers (and, for the tight one,
//! strictly fewer solver verifications) before any timing runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ged_core::engine::GedEngine;
use ged_core::method::MethodKind;
use ged_core::plan::QueryShape;
use ged_core::solver::{GedgwSolver, SolverRegistry};
use ged_graph::{GraphDataset, ShardedStore};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

const RANGE_TAU: f64 = 6.0;
const EXACT_TAU: f64 = 4.0;
/// Queries before the planner's EWMA state is considered warmed
/// (`>= MIN_OBSERVATIONS`).
const WARMUP: usize = 4;

fn engine(pivots: usize, adaptive: bool) -> GedEngine {
    let mut registry = SolverRegistry::new();
    registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
    GedEngine::builder(registry)
        .threads(1) // isolate plan cost from parallel speedup
        .pivots(pivots)
        .adaptive_planner(adaptive)
        .build()
        .expect("GEDGW is registered")
}

fn bench_tight_intervals(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_planner_tight");
    group.sample_size(10);
    for size in [100usize, 400] {
        let mut rng = SmallRng::seed_from_u64(12_000 + size as u64);
        let store = GraphDataset::aids_like(size, &mut rng).into_store();
        let static_e = engine(4, false);
        let adaptive_e = engine(4, true);
        // Pivot sampling is deterministic, so both engines agree on the
        // set; a member of it has tight bounds to every stored graph.
        let query = store
            .get(static_e.pivot_ids(&store)[0])
            .expect("pivot is stored")
            .clone();

        // Warm the planner and both engines' pivot caches outside the
        // timed region, proving the contract while at it.
        for _ in 0..WARMUP {
            let a = adaptive_e.range(&query, &store, RANGE_TAU).expect("valid");
            let s = static_e.range(&query, &store, RANGE_TAU).expect("valid");
            assert_eq!(a.neighbors, s.neighbors, "range must be bit-identical");
            let a = adaptive_e
                .range_exact(&query, &store, EXACT_TAU)
                .expect("valid");
            let s = static_e
                .range_exact(&query, &store, EXACT_TAU)
                .expect("valid");
            assert_eq!(a.matches, s.matches, "exact range must be bit-identical");
        }
        let saved = adaptive_e.planner_counters().expect("planner is on");
        assert!(
            saved.solver_calls_saved > 0 && saved.searches_saved > 0,
            "tight intervals must collapse verification: {saved:?}"
        );

        group.bench_with_input(BenchmarkId::new("range_static", size), &size, |b, _| {
            b.iter(|| black_box(static_e.range(&query, &store, RANGE_TAU).expect("valid")))
        });
        group.bench_with_input(BenchmarkId::new("range_adaptive", size), &size, |b, _| {
            b.iter(|| black_box(adaptive_e.range(&query, &store, RANGE_TAU).expect("valid")))
        });
        group.bench_with_input(
            BenchmarkId::new("range_exact_static", size),
            &size,
            |b, _| {
                b.iter(|| {
                    black_box(
                        static_e
                            .range_exact(&query, &store, EXACT_TAU)
                            .expect("valid"),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("range_exact_adaptive", size),
            &size,
            |b, _| {
                b.iter(|| {
                    black_box(
                        adaptive_e
                            .range_exact(&query, &store, EXACT_TAU)
                            .expect("valid"),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_dead_pivot_tier(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_planner_dead_pivot");
    group.sample_size(10);
    for size in [100usize, 400] {
        let mut rng = SmallRng::seed_from_u64(13_000 + size as u64);
        let flat = GraphDataset::aids_like(size, &mut rng).into_store();
        // Deliberately never `sync_sharded_pivots`: the pivot tier is
        // vacuous by construction, the workload the planner should learn
        // to stop paying for.
        let mut sharded = ShardedStore::new(4);
        for (_, g) in flat.iter() {
            sharded.insert(g.clone());
        }
        let static_e = engine(3, false);
        let adaptive_e = engine(3, true);
        let query = flat.graphs().next().expect("non-empty").clone();

        for _ in 0..WARMUP {
            let a = adaptive_e
                .range_exact_sharded(&query, &sharded, EXACT_TAU)
                .expect("valid");
            let s = static_e
                .range_exact_sharded(&query, &sharded, EXACT_TAU)
                .expect("valid");
            assert_eq!(a.matches, s.matches, "exact range must be bit-identical");
        }
        assert!(
            adaptive_e
                .explain(QueryShape::RangeExact)
                .skipped
                .contains(&"pivot_lb"),
            "the warmed planner must skip the dead pivot tier"
        );

        group.bench_with_input(BenchmarkId::new("static", size), &size, |b, _| {
            b.iter(|| {
                black_box(
                    static_e
                        .range_exact_sharded(&query, &sharded, EXACT_TAU)
                        .expect("valid"),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("adaptive", size), &size, |b, _| {
            b.iter(|| {
                black_box(
                    adaptive_e
                        .range_exact_sharded(&query, &sharded, EXACT_TAU)
                        .expect("valid"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tight_intervals, bench_dead_pivot_tier);
criterion_main!(benches);
