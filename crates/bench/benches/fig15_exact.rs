//! Exact-solver scaling — Figure 15's shape at micro scale: exact A* time
//! explodes with graph size and GED while the OT methods stay flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ged_baselines::astar::{astar_beam, astar_exact_with_limit};
use ged_core::gedgw::Gedgw;
use ged_core::pairs::GedPair;
use ged_graph::generate;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn perturbed(n: usize, delta: usize, seed: u64) -> GedPair {
    let mut rng = SmallRng::seed_from_u64(seed);
    let weights: Vec<f64> = (0..29).map(|i| 1.0 / (1.0 + i as f64).powf(1.4)).collect();
    let g = generate::random_connected(n, n / 4, &weights, &mut rng);
    let p = generate::perturb_with_edits(&g, delta, 29, &mut rng);
    GedPair::supervised(g, p.graph, p.applied as f64, p.mapping)
}

fn bench_exact_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_exact_scaling");
    group.sample_size(10);
    for &(n, delta) in &[(8usize, 3usize), (12, 3), (12, 5), (16, 5)] {
        let pair = perturbed(n, delta, n as u64 * 100 + delta as u64);
        group.bench_with_input(
            BenchmarkId::new("astar_exact", format!("n{n}_d{delta}")),
            &pair,
            |b, p| {
                b.iter(|| black_box(astar_exact_with_limit(&p.g1, &p.g2, 2_000_000)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("astar_beam100", format!("n{n}_d{delta}")),
            &pair,
            |b, p| {
                b.iter(|| black_box(astar_beam(&p.g1, &p.g2, 100).ged));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("gedgw", format!("n{n}_d{delta}")),
            &pair,
            |b, p| {
                b.iter(|| black_box(Gedgw::new(&p.g1, &p.g2).solve().ged));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exact_scaling);
criterion_main!(benches);
