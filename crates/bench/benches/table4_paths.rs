//! Edit-path generation time — the `sec/100p` column of Table 4 and the
//! time panel of Figure 21 (varying `k` in k-best matching).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ged_core::gedgw::Gedgw;
use ged_core::kbest::kbest_edit_path;
use ged_graph::{generate, Graph};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn pairs(count: usize) -> Vec<(Graph, Graph)> {
    let mut rng = SmallRng::seed_from_u64(11);
    let weights: Vec<f64> = (0..29).map(|i| 1.0 / (1.0 + i as f64).powf(1.4)).collect();
    (0..count)
        .map(|_| {
            (
                generate::random_connected(8, 2, &weights, &mut rng),
                generate::random_connected(10, 3, &weights, &mut rng),
            )
        })
        .collect()
}

fn bench_kbest(c: &mut Criterion) {
    let data = pairs(8);
    // Precompute GEDGW couplings once — the bench isolates the path search.
    let couplings: Vec<_> = data
        .iter()
        .map(|(g1, g2)| Gedgw::new(g1, g2).solve().coupling)
        .collect();

    let mut group = c.benchmark_group("table4_kbest_paths");
    for &k in &[1usize, 10, 50, 100] {
        group.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            b.iter(|| {
                for ((g1, g2), pi) in data.iter().zip(&couplings) {
                    black_box(kbest_edit_path(g1, g2, pi, k).ged);
                }
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("table4_gedgw_solve_plus_path");
    group.bench_function("solve_with_path_k20", |b| {
        b.iter(|| {
            for (g1, g2) in &data {
                black_box(Gedgw::new(g1, g2).solve_with_path(20).1.ged);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kbest);
criterion_main!(benches);
