//! Per-pair GED prediction time of each method — the `sec/100p` column of
//! Table 3 at micro scale. Inputs are AIDS-like pairs (≤ 10 nodes).

use criterion::{criterion_group, criterion_main, Criterion};
use ged_baselines::astar::astar_beam;
use ged_baselines::classic::{classic_ged, hungarian_ged, vj_ged};
use ged_baselines::gedgnn::{Gedgnn, GedgnnConfig};
use ged_core::gedgw::Gedgw;
use ged_core::gediot::{Gediot, GediotConfig};
use ged_graph::{generate, Graph};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn aids_pairs(count: usize) -> Vec<(Graph, Graph)> {
    let mut rng = SmallRng::seed_from_u64(42);
    let weights: Vec<f64> = (0..29).map(|i| 1.0 / (1.0 + i as f64).powf(1.4)).collect();
    (0..count)
        .map(|_| {
            let g1 = generate::random_connected(8, 2, &weights, &mut rng);
            let g2 = generate::random_connected(9, 2, &weights, &mut rng);
            (g1, g2)
        })
        .collect()
}

fn bench_methods(c: &mut Criterion) {
    let pairs = aids_pairs(16);
    let mut rng = SmallRng::seed_from_u64(7);
    let gediot = Gediot::new(GediotConfig::small(29), &mut rng);
    let gedgnn = Gedgnn::new(GedgnnConfig::small(29), &mut rng);

    let mut group = c.benchmark_group("table3_prediction");
    group.bench_function("classic", |b| {
        b.iter(|| {
            for (g1, g2) in &pairs {
                black_box(classic_ged(g1, g2).ged);
            }
        })
    });
    group.bench_function("hungarian", |b| {
        b.iter(|| {
            for (g1, g2) in &pairs {
                black_box(hungarian_ged(g1, g2).ged);
            }
        })
    });
    group.bench_function("vj", |b| {
        b.iter(|| {
            for (g1, g2) in &pairs {
                black_box(vj_ged(g1, g2).ged);
            }
        })
    });
    group.bench_function("astar_beam_100", |b| {
        b.iter(|| {
            for (g1, g2) in &pairs {
                black_box(astar_beam(g1, g2, 100).ged);
            }
        })
    });
    group.bench_function("gedgw", |b| {
        b.iter(|| {
            for (g1, g2) in &pairs {
                black_box(Gedgw::new(g1, g2).solve().ged);
            }
        })
    });
    group.bench_function("gediot_forward", |b| {
        b.iter(|| {
            for (g1, g2) in &pairs {
                black_box(gediot.predict(g1, g2).ged);
            }
        })
    });
    group.bench_function("gedgnn_forward", |b| {
        b.iter(|| {
            for (g1, g2) in &pairs {
                black_box(gedgnn.predict(g1, g2).ged);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
