//! Nested-loop vs. the shared-work join plan on growing stores. The
//! nested loop runs the τ-bounded exact search on every unordered pair
//! independently — `n·(n−1)/2` calls with no shared state. The join
//! plan arms one pivot index for the whole matrix, generates candidates
//! in signature-sort order so a single size-gap comparison discards a
//! contiguous band, and (sharded) drops whole shard×shard blocks on one
//! aggregate bound. Both produce bit-identical pair sets; the gap is
//! pure filter-tier savings, so it widens quadratically with the store.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ged_core::engine::GedEngine;
use ged_core::method::MethodKind;
use ged_core::search::bounded_exact_ged;
use ged_core::solver::{GedgwSolver, SolverRegistry};
use ged_graph::{GraphDataset, ShardedStore};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

const TAU: usize = 2;

fn engine() -> GedEngine {
    let mut registry = SolverRegistry::new();
    registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
    GedEngine::builder(registry)
        .threads(1) // isolate plan cost from parallel speedup
        .pivots(3)
        .build()
        .expect("GEDGW is registered")
}

fn bench_self_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_join_self");
    group.sample_size(10);
    for size in [50usize, 100, 200] {
        let mut rng = SmallRng::seed_from_u64(11_000 + size as u64);
        let store = GraphDataset::aids_like(size, &mut rng).into_store();
        let engine = engine();

        group.bench_with_input(BenchmarkId::new("nested", size), &size, |b, _| {
            b.iter(|| {
                let entries: Vec<_> = store.iter().collect();
                let mut pairs = Vec::new();
                for (i, &(a, ga)) in entries.iter().enumerate() {
                    for &(b, gb) in &entries[i + 1..] {
                        if let Some(ged) = bounded_exact_ged(ga, gb, TAU) {
                            pairs.push((a, b, ged));
                        }
                    }
                }
                black_box(pairs)
            })
        });

        group.bench_with_input(BenchmarkId::new("flat", size), &size, |b, _| {
            b.iter(|| {
                let result = engine.self_join(&store, TAU as f64).expect("valid join");
                black_box(result)
            })
        });

        let mut sharded = ShardedStore::new(4);
        for (_, g) in store.iter() {
            sharded.insert(g.clone());
        }
        engine.sync_sharded_pivots(&mut sharded);
        group.bench_with_input(BenchmarkId::new("sharded", size), &size, |b, _| {
            b.iter(|| {
                let result = engine
                    .self_join_sharded(&sharded, TAU as f64)
                    .expect("valid join");
                black_box(result)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_self_join);
criterion_main!(benches);
