//! Micro-benchmarks of the numerical kernels every method is built on:
//! Sinkhorn iterations, linear assignment, and the fast `L ⊗ π` tensor
//! product (the `O(n³)` decomposition of Appendix E.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ged_linalg::{lsap_min, lsap_min_munkres, Matrix};
use ged_ot::gw::{gw_tensor_apply, gw_tensor_apply_naive};
use ged_ot::sinkhorn::{sinkhorn, sinkhorn_dummy_row};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn rand_matrix(n: usize, m: usize, seed: u64) -> Matrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    Matrix::from_fn(n, m, |_, _| rng.gen_range(0.0..2.0))
}

fn rand_adjacency(n: usize, seed: u64) -> Matrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(0.3) {
                a[(i, j)] = 1.0;
                a[(j, i)] = 1.0;
            }
        }
    }
    a
}

fn bench_sinkhorn(c: &mut Criterion) {
    let mut group = c.benchmark_group("sinkhorn");
    for &n in &[10usize, 30, 100] {
        let cost = rand_matrix(n, n, 1);
        let mu = vec![1.0; n];
        let nu = vec![1.0; n];
        group.bench_with_input(BenchmarkId::new("balanced_5it", n), &n, |b, _| {
            b.iter(|| black_box(sinkhorn(&cost, &mu, &nu, 0.05, 5)));
        });
        let rect = rand_matrix(n, n + n / 2, 2);
        group.bench_with_input(BenchmarkId::new("dummy_row_5it", n), &n, |b, _| {
            b.iter(|| black_box(sinkhorn_dummy_row(&rect, 0.05, 5)));
        });
    }
    group.finish();
}

fn bench_lsap(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsap");
    for &n in &[10usize, 50, 150] {
        let cost = rand_matrix(n, n, 3);
        group.bench_with_input(BenchmarkId::new("jonker_volgenant", n), &n, |b, _| {
            b.iter(|| black_box(lsap_min(&cost)));
        });
        group.bench_with_input(BenchmarkId::new("munkres", n), &n, |b, _| {
            b.iter(|| black_box(lsap_min_munkres(&cost)));
        });
    }
    group.finish();
}

fn bench_gw_tensor(c: &mut Criterion) {
    let mut group = c.benchmark_group("gw_tensor");
    for &n in &[10usize, 30, 60] {
        let a1 = rand_adjacency(n, 4);
        let a2 = rand_adjacency(n, 5);
        let pi = rand_matrix(n, n, 6).scale(1.0 / n as f64);
        group.bench_with_input(BenchmarkId::new("fast_o_n3", n), &n, |b, _| {
            b.iter(|| black_box(gw_tensor_apply(&a1, &a2, &pi)));
        });
        if n <= 30 {
            group.bench_with_input(BenchmarkId::new("naive_o_n4", n), &n, |b, _| {
                b.iter(|| black_box(gw_tensor_apply_naive(&a1, &a2, &pi)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sinkhorn, bench_lsap, bench_gw_tensor);
criterion_main!(benches);
