//! Flat vs. sharded top-k over growing size-heterogeneous stores, with a
//! bucket-width sweep. The flat plan scores every stored graph before
//! the candidate tiers run; the sharded plan first drops whole shards
//! whose aggregate bound already exceeds the running k-th distance, so
//! on IMDB-like data (small ego-nets mixed with much larger graphs) a
//! small query never touches the large-graph partitions. Width 1 puts
//! every node count in its own shard (tightest aggregate bounds, most
//! shards); `usize::MAX` degenerates to one shard — the flat plan plus
//! bookkeeping — bracketing the practical widths 4 and 8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ged_core::engine::GedEngine;
use ged_core::method::MethodKind;
use ged_core::solver::{GedgwSolver, SolverRegistry};
use ged_graph::{GraphDataset, ShardedStore};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

const K: usize = 5;

fn engine() -> GedEngine {
    let mut registry = SolverRegistry::new();
    registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
    GedEngine::builder(registry)
        .threads(1) // isolate plan cost from parallel speedup
        .build()
        .expect("GEDGW is registered")
}

fn bench_sharded_top_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_shard_top_k");
    group.sample_size(10);
    for size in [100usize, 400, 1600] {
        let mut rng = SmallRng::seed_from_u64(10_000 + size as u64);
        let store = GraphDataset::imdb_like(size, 14, &mut rng).into_store();
        let query = store
            .graphs()
            .min_by_key(|g| g.num_nodes())
            .expect("non-empty")
            .clone();
        let engine = engine();

        group.bench_with_input(BenchmarkId::new("flat", size), &size, |b, _| {
            b.iter(|| {
                let result = engine.top_k(&query, &store, K).expect("valid query");
                black_box(result)
            })
        });

        for width in [1usize, 4, 8, usize::MAX] {
            let mut sharded = ShardedStore::new(width);
            for (_, g) in store.iter() {
                sharded.insert(g.clone());
            }
            let tag = if width == usize::MAX {
                "w-inf".to_string()
            } else {
                format!("w{width}")
            };
            group.bench_with_input(BenchmarkId::new(tag, size), &size, |b, _| {
                b.iter(|| {
                    let result = engine
                        .top_k_sharded(&query, &sharded, K)
                        .expect("valid query");
                    black_box(result)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_top_k);
criterion_main!(benches);
