//! Power-law graph scaling — Figure 16's time panel at micro scale:
//! GEDGW's conditional gradient and GEDIOT's forward pass on 25–100-node
//! Barabási–Albert graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ged_core::gedgw::{Gedgw, GedgwOptions};
use ged_core::gediot::{Gediot, GediotConfig};
use ged_graph::generate;
use ged_graph::Graph;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn powerlaw_pair(n: usize, seed: u64) -> (Graph, Graph) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let g = generate::barabasi_albert(n, 2, &mut rng);
    let p = generate::perturb_with_edits(&g, 6, 1, &mut rng);
    (g, p.graph)
}

fn bench_powerlaw(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let gediot = Gediot::new(GediotConfig::small(1), &mut rng);

    let mut group = c.benchmark_group("fig16_powerlaw");
    group.sample_size(10);
    for &n in &[25usize, 50, 100] {
        let (g1, g2) = powerlaw_pair(n, n as u64);
        group.bench_with_input(BenchmarkId::new("gedgw_cg", n), &n, |b, _| {
            b.iter(|| {
                let opts = GedgwOptions {
                    max_iter: 20,
                    ..Default::default()
                };
                black_box(Gedgw::new(&g1, &g2).with_options(opts).solve().ged)
            });
        });
        group.bench_with_input(BenchmarkId::new("gediot_forward", n), &n, |b, _| {
            b.iter(|| black_box(gediot.predict(&g1, &g2).ged));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_powerlaw);
criterion_main!(benches);
