//! Exact range-search throughput: a brute-force τ-bounded exact scan vs.
//! the engine's three-tier filter–prune–verify plan at growing store
//! sizes. The filter tier reads only precomputed signatures and the
//! prune tier replaces τ-bounded searches with (much tighter) ub-bounded
//! ones, so the plan's advantage widens with the store — this bench makes
//! the `ExactSearchStats` savings visible as wall clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ged_core::engine::GedEngine;
use ged_core::method::MethodKind;
use ged_core::search::bounded_exact_ged;
use ged_core::solver::{GedgwSolver, SolverRegistry};
use ged_graph::{Graph, GraphDataset, GraphId, GraphStore};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

const TAU: usize = 4;

fn engine() -> GedEngine {
    let mut registry = SolverRegistry::new();
    registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
    GedEngine::builder(registry)
        .threads(1) // isolate plan cost from parallel speedup
        .build()
        .expect("GEDGW is registered")
}

/// The unindexed baseline: a τ-bounded exact search per stored graph.
fn brute_force_exact_range(store: &GraphStore, query: &Graph, tau: usize) -> Vec<(GraphId, usize)> {
    store
        .iter()
        .filter_map(|(id, g)| bounded_exact_ged(query, g, tau).map(|ged| (id, ged)))
        .collect()
}

fn bench_exact_search(c: &mut Criterion) {
    let engine = engine();
    let mut group = c.benchmark_group("fig_exact_search_range");
    group.sample_size(10);
    for size in [25usize, 50, 100] {
        let mut rng = SmallRng::seed_from_u64(8_000 + size as u64);
        let store = GraphDataset::aids_like(size, &mut rng).into_store();
        let query = store.graphs().next().expect("non-empty").clone();

        group.bench_with_input(BenchmarkId::new("brute_force", size), &size, |b, _| {
            b.iter(|| black_box(brute_force_exact_range(&store, &query, TAU)))
        });
        group.bench_with_input(
            BenchmarkId::new("filter_prune_verify", size),
            &size,
            |b, _| {
                b.iter(|| {
                    let result = engine
                        .range_exact(&query, &store, TAU as f64)
                        .expect("valid query");
                    black_box(result)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exact_search);
criterion_main!(benches);
