//! One function per table/figure of the paper. See DESIGN.md §3 for the
//! experiment index and EXPERIMENTS.md for paper-vs-measured results.

use crate::harness::{
    eval_path, eval_value, format_path_table, format_value_table, prepare, train_all, ExpConfig,
    MethodKind, PreparedDataset,
};
use ged_baselines::astar::{astar_beam, astar_exact_with_limit};
use ged_baselines::classic::classic_ged;
use ged_baselines::gedgnn::{Gedgnn, GedgnnConfig};
use ged_core::engine::GedEngine;
use ged_core::ensemble::{Gedhot, Source};
use ged_core::gedgw::Gedgw;
use ged_core::gediot::{ConvKind, Gediot, GediotConfig};
use ged_core::kbest::kbest_edit_path;
use ged_core::pairs::GedPair;
use ged_eval::metrics::{self, PairOutcome};
use ged_graph::{generate, DatasetKind, GraphDataset, GraphId};
use rand::rngs::SmallRng;
use rand::Rng;
use std::fmt::Write as _;
use std::time::Instant;

const DATASETS: [DatasetKind; 3] = [DatasetKind::Aids, DatasetKind::Linux, DatasetKind::Imdb];

/// Table 2: dataset statistics.
#[must_use]
pub fn run_table2(cfg: &ExpConfig) -> String {
    let mut rng = cfg.rng();
    let mut out =
        String::from("== Table 2: Statistics of Graph Datasets (synthetic stand-ins) ==\n");
    let _ = writeln!(
        out,
        "{:<8} {:>5} {:>8} {:>8} {:>8} {:>8} {:>6}",
        "Dataset", "|D|", "|V|avg", "|E|avg", "|V|max", "|E|max", "|L|"
    );
    for kind in DATASETS {
        let ds = GraphDataset::build(kind, cfg.dataset_size, &mut rng);
        let s = ds.stats();
        let _ = writeln!(
            out,
            "{:<8} {:>5} {:>8.1} {:>8.1} {:>8} {:>8} {:>6}",
            kind.name(),
            s.count,
            s.avg_nodes,
            s.avg_edges,
            s.max_nodes,
            s.max_edges,
            s.num_labels
        );
    }
    out
}

/// Table 3: GED computation quality over all nine methods and three
/// datasets.
#[must_use]
pub fn run_table3(cfg: &ExpConfig) -> String {
    let mut out = String::new();
    for kind in DATASETS {
        let mut rng = cfg.rng();
        let prep = prepare(kind, cfg, false, &mut rng);
        let models = train_all(&prep, cfg, &mut rng);
        let engine = models.engine(cfg.kbest_k);
        let rows: Vec<_> = MethodKind::table3()
            .into_iter()
            .map(|m| eval_value(&engine, &prep, m).expect("full registry"))
            .collect();
        out.push_str(&format_value_table(
            &format!("Table 3 ({}): GED computation", kind.name()),
            &rows,
        ));
        out.push('\n');
    }
    out
}

/// Table 4: GEP generation quality for the path-capable methods.
#[must_use]
pub fn run_table4(cfg: &ExpConfig) -> String {
    let mut out = String::new();
    for kind in DATASETS {
        let mut rng = cfg.rng();
        let prep = prepare(kind, cfg, false, &mut rng);
        let models = train_all(&prep, cfg, &mut rng);
        let engine = models.engine(cfg.kbest_k);
        let rows: Vec<_> = MethodKind::table4()
            .into_iter()
            .map(|m| eval_path(&engine, &prep, m, cfg.kbest_k).expect("path-capable lineup"))
            .collect();
        out.push_str(&format_path_table(
            &format!("Table 4 ({}): GEP generation", kind.name()),
            &rows,
        ));
        out.push('\n');
    }
    out
}

/// Table 5: generalization to pairs of *unseen* graphs (both sides from the
/// test split) for the learning-based methods.
#[must_use]
pub fn run_table5(cfg: &ExpConfig) -> String {
    let methods = [
        MethodKind::SimGnn,
        MethodKind::Gpn,
        MethodKind::TaGSim,
        MethodKind::GedGnn,
        MethodKind::Gediot,
    ];
    let mut out = String::new();
    for kind in DATASETS {
        let mut rng = cfg.rng();
        let prep = prepare(kind, cfg, true, &mut rng);
        let models = train_all(&prep, cfg, &mut rng);
        let engine = models.engine(cfg.kbest_k);
        let rows: Vec<_> = methods
            .iter()
            .map(|&m| eval_value(&engine, &prep, m).expect("full registry"))
            .collect();
        out.push_str(&format_value_table(
            &format!("Table 5 ({}): unseen graph pairs", kind.name()),
            &rows,
        ));
        out.push('\n');
    }
    out
}

fn eval_gediot_variant(
    prep: &PreparedDataset,
    cfg: &ExpConfig,
    name: &str,
    make: impl Fn(GediotConfig) -> GediotConfig,
    rng: &mut SmallRng,
) -> String {
    let base = GediotConfig::small(prep.kind.num_labels() as usize);
    let mut model = Gediot::new(make(base), rng);
    model.train(&prep.train_pairs, cfg.epochs, rng);
    let mut outcomes = Vec::new();
    let mut ranking = ged_eval::metrics::GroupedRanking::new();
    for group in &prep.test_groups {
        let (mut ps, mut gs) = (Vec::new(), Vec::new());
        for pair in group {
            let pred = model.predict(&pair.g1, &pair.g2).ged;
            let gt = pair.ged.expect("supervised");
            outcomes.push(PairOutcome { pred, gt });
            ps.push(pred);
            gs.push(gt);
        }
        ranking.push_group(ps, gs);
    }
    format!(
        "{:<22} {:>7.3} {:>8.1}% {:>7.3} {:>7.3} {:>7.3} {:>7.3}\n",
        name,
        metrics::mae(&outcomes),
        metrics::accuracy(&outcomes) * 100.0,
        ranking.mean_spearman(),
        ranking.mean_kendall(),
        ranking.mean_precision_at(5),
        ranking.mean_precision_at(10),
    )
}

/// Table 6: ablation of the GEDIOT components (w/ GCN, w/o MLP, w/o Cost,
/// w/o learnable ε) on AIDS and Linux.
#[must_use]
pub fn run_table6(cfg: &ExpConfig) -> String {
    let mut out = String::new();
    for kind in [DatasetKind::Aids, DatasetKind::Linux] {
        let mut rng = cfg.rng();
        let prep = prepare(kind, cfg, false, &mut rng);
        let _ = writeln!(out, "== Table 6 ({}): GEDIOT ablation ==", kind.name());
        let _ = writeln!(
            out,
            "{:<22} {:>7} {:>9} {:>7} {:>7} {:>7} {:>7}",
            "Variant", "MAE", "Accuracy", "rho", "tau", "p@5", "p@10"
        );
        out.push_str(&eval_gediot_variant(&prep, cfg, "GEDIOT", |c| c, &mut rng));
        out.push_str(&eval_gediot_variant(
            &prep,
            cfg,
            "GEDIOT (w/ GCN)",
            |mut c| {
                c.conv = ConvKind::Gcn;
                c
            },
            &mut rng,
        ));
        out.push_str(&eval_gediot_variant(
            &prep,
            cfg,
            "GEDIOT (w/o MLP)",
            |mut c| {
                c.use_mlp = false;
                c
            },
            &mut rng,
        ));
        out.push_str(&eval_gediot_variant(
            &prep,
            cfg,
            "GEDIOT (w/o Cost)",
            |mut c| {
                c.use_cost_layer = false;
                c
            },
            &mut rng,
        ));
        out.push_str(&eval_gediot_variant(
            &prep,
            cfg,
            "GEDIOT (w/o learn eps)",
            |mut c| {
                c.learnable_epsilon = false;
                c
            },
            &mut rng,
        ));
        out.push('\n');
    }
    out
}

/// Builds the Figure 8 split of IMDB: training pairs from small graphs
/// only, test groups on large graphs only.
fn imdb_small_train_large_test(cfg: &ExpConfig, rng: &mut SmallRng) -> PreparedDataset {
    let mut prep = prepare(DatasetKind::Imdb, cfg, false, rng);
    // Restrict training pairs to small-graph pairs.
    prep.train_pairs.retain(|p| p.g2.num_nodes() <= 10);
    // Rebuild test groups on large graphs only (synthetic partners).
    let mut groups = Vec::new();
    for &q in &prep.split.test {
        let g = &prep.dataset[q];
        if g.num_nodes() > 10 {
            let mut group = Vec::new();
            for _ in 0..cfg.partners {
                let delta = 1 + rng.gen_range(0..10);
                let p = generate::perturb_with_edits(g, delta, 1, rng);
                group.push(GedPair::supervised(
                    g.clone(),
                    p.graph,
                    p.applied as f64,
                    p.mapping,
                ));
            }
            groups.push(group);
        }
        if groups.len() >= cfg.max_queries {
            break;
        }
    }
    prep.test_groups = groups;
    prep
}

/// Figure 8: generalization to large unseen IMDB graphs after training on
/// small graphs only ("-small" models) vs. the full training set, plus the
/// training-free baselines.
#[must_use]
pub fn run_fig8(cfg: &ExpConfig) -> String {
    let mut rng = cfg.rng();
    // Full training set models.
    let prep_full = prepare(DatasetKind::Imdb, cfg, false, &mut rng);
    let models_full = train_all(&prep_full, cfg, &mut rng);
    let engine_full = models_full.engine(cfg.kbest_k);
    // Small-graph training, large-graph test.
    let prep_small = imdb_small_train_large_test(cfg, &mut rng);
    let models_small = train_all(&prep_small, cfg, &mut rng);
    let engine_small = models_small.engine(cfg.kbest_k);

    let eval_on = |engine: &GedEngine, method: MethodKind, name: &str| -> String {
        let mut outcomes = Vec::new();
        for group in &prep_small.test_groups {
            for pair in group {
                let pred = engine.predict_as(method, pair).expect("full registry").ged;
                outcomes.push(PairOutcome {
                    pred,
                    gt: pair.ged.expect("supervised"),
                });
            }
        }
        format!(
            "{:<14} {:>8.3} {:>8.1}%\n",
            name,
            metrics::mae(&outcomes),
            metrics::accuracy(&outcomes) * 100.0
        )
    };

    let mut out = String::from("== Figure 8 (IMDB): generalizability to large unseen graphs ==\n");
    let _ = writeln!(out, "{:<14} {:>8} {:>9}", "Method", "MAE", "Accuracy");
    out.push_str(&eval_on(&engine_full, MethodKind::GedGnn, "GEDGNN"));
    out.push_str(&eval_on(&engine_full, MethodKind::Gediot, "GEDIOT"));
    out.push_str(&eval_on(&engine_full, MethodKind::Gedhot, "GEDHOT"));
    out.push_str(&eval_on(&engine_small, MethodKind::GedGnn, "GEDGNN-small"));
    out.push_str(&eval_on(&engine_small, MethodKind::Gediot, "GEDIOT-small"));
    out.push_str(&eval_on(&engine_small, MethodKind::Gedhot, "GEDHOT-small"));
    out.push_str(&eval_on(&engine_small, MethodKind::Classic, "Classic"));
    out.push_str(&eval_on(&engine_small, MethodKind::Gedgw, "GEDGW"));
    out
}

/// Figure 12: large unseen IMDB graphs with increasing GED
/// (`Δ = ⌈r·n⌉`, `r ∈ {0.1,…,0.5}`).
#[must_use]
pub fn run_fig12(cfg: &ExpConfig) -> String {
    let mut rng = cfg.rng();
    let prep_small = imdb_small_train_large_test(cfg, &mut rng);
    let models = train_all(&prep_small, cfg, &mut rng);
    let engine = models.engine(cfg.kbest_k);

    // Large test graphs to perturb.
    let large: Vec<GraphId> = prep_small
        .split
        .test
        .iter()
        .copied()
        .filter(|&i| prep_small.dataset[i].num_nodes() > 10)
        .take(cfg.max_queries)
        .collect();

    let mut out = String::from("== Figure 12 (IMDB): increasing GED on large unseen graphs ==\n");
    let _ = writeln!(
        out,
        "{:<6} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "r", "GEDGNN-s", "GEDIOT-s", "GEDHOT-s", "GEDGW", "Classic"
    );
    for r in [0.1, 0.2, 0.3, 0.4, 0.5] {
        let mut pairs = Vec::new();
        for &i in &large {
            let g = &prep_small.dataset[i];
            let delta = ((g.num_nodes() as f64 * r).ceil() as usize).max(1);
            let p = generate::perturb_with_edits(g, delta, 1, &mut rng);
            pairs.push(GedPair::supervised(
                g.clone(),
                p.graph,
                p.applied as f64,
                p.mapping,
            ));
        }
        let mae_of = |method: MethodKind| -> f64 {
            let outcomes: Vec<PairOutcome> = pairs
                .iter()
                .map(|pair| PairOutcome {
                    pred: engine.predict_as(method, pair).expect("full registry").ged,
                    gt: pair.ged.expect("supervised"),
                })
                .collect();
            metrics::mae(&outcomes)
        };
        let _ = writeln!(
            out,
            "{:<6.1} {:>14.3} {:>14.3} {:>14.3} {:>14.3} {:>14.3}",
            r,
            mae_of(MethodKind::GedGnn),
            mae_of(MethodKind::Gediot),
            mae_of(MethodKind::Gedhot),
            mae_of(MethodKind::Gedgw),
            mae_of(MethodKind::Classic),
        );
    }
    out.push_str("(cells are GED MAE; lower is better)\n");
    out
}

/// Figure 13: how often GEDHOT adopts GEDIOT vs. GEDGW, for both GED
/// values and edit paths.
#[must_use]
pub fn run_fig13(cfg: &ExpConfig) -> String {
    let mut out = String::from("== Figure 13: GEDHOT adoption rate (GEDIOT vs GEDGW) ==\n");
    let _ = writeln!(
        out,
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "Dataset", "value:IOT", "value:GW", "path:IOT", "path:GW"
    );
    for kind in DATASETS {
        let mut rng = cfg.rng();
        let prep = prepare(kind, cfg, false, &mut rng);
        let models = train_all(&prep, cfg, &mut rng);
        let ens = Gedhot::new(&models.gediot);
        let (mut v_iot, mut v_gw, mut p_iot, mut p_gw) = (0usize, 0usize, 0usize, 0usize);
        for group in &prep.test_groups {
            for pair in group {
                let pred = ens.predict(&pair.g1, &pair.g2);
                match pred.value_source {
                    Source::Gediot => v_iot += 1,
                    Source::Gedgw => v_gw += 1,
                }
                let (_, _, src) = ens.predict_with_path(&pair.g1, &pair.g2, cfg.kbest_k);
                match src {
                    Source::Gediot => p_iot += 1,
                    Source::Gedgw => p_gw += 1,
                }
            }
        }
        let tot = (v_iot + v_gw).max(1) as f64;
        let _ = writeln!(
            out,
            "{:<8} {:>11.1}% {:>11.1}% {:>11.1}% {:>11.1}%",
            kind.name(),
            v_iot as f64 / tot * 100.0,
            v_gw as f64 / tot * 100.0,
            p_iot as f64 / tot * 100.0,
            p_gw as f64 / tot * 100.0
        );
    }
    out
}

/// Figure 14: fraction of sampled graph triples whose predictions satisfy
/// the GED triangle inequality.
#[must_use]
pub fn run_fig14(cfg: &ExpConfig) -> String {
    let mut out = String::from("== Figure 14: triangle-inequality preservation ==\n");
    let _ = writeln!(
        out,
        "{:<8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Dataset", "SimGNN", "GPN", "TaGSim", "GEDGNN", "GEDIOT", "GEDGW", "GEDHOT"
    );
    let methods = [
        MethodKind::SimGnn,
        MethodKind::Gpn,
        MethodKind::TaGSim,
        MethodKind::GedGnn,
        MethodKind::Gediot,
        MethodKind::Gedgw,
        MethodKind::Gedhot,
    ];
    for kind in [DatasetKind::Aids, DatasetKind::Linux] {
        let mut rng = cfg.rng();
        let prep = prepare(kind, cfg, false, &mut rng);
        let models = train_all(&prep, cfg, &mut rng);
        let engine = models.engine(cfg.kbest_k);
        let idx = &prep.split.test;
        let triples = 30.min(idx.len().saturating_sub(2) * 3);
        let mut rates = Vec::new();
        for &method in &methods {
            let mut ok = 0usize;
            let mut total = 0usize;
            for t in 0..triples {
                let a = &prep.dataset[idx[t % idx.len()]];
                let b = &prep.dataset[idx[(t + 1) % idx.len()]];
                let c = &prep.dataset[idx[(t + 2) % idx.len()]];
                let value = |x: &ged_graph::Graph, y: &ged_graph::Graph| -> f64 {
                    engine.ged_as(method, x, y).expect("full registry").ged
                };
                let ab = value(a, b);
                let bc = value(b, c);
                let ac = value(a, c);
                total += 1;
                if ac <= ab + bc + 1e-9 {
                    ok += 1;
                }
            }
            rates.push(ok as f64 / total.max(1) as f64 * 100.0);
        }
        let _ = writeln!(
            out,
            "{:<8} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            kind.name(),
            rates[0],
            rates[1],
            rates[2],
            rates[3],
            rates[4],
            rates[5],
            rates[6]
        );
    }
    out
}

/// Figure 15: running time against exact solvers on larger labeled graphs
/// (`n ∈ {20, 30, 40}`, GED ∈ {5, 7, 9, 11}).
#[must_use]
pub fn run_fig15(cfg: &ExpConfig) -> String {
    let mut rng = cfg.rng();
    let sizes = [20usize, 30, 40];
    let deltas = [5usize, 7, 9, 11];
    let weights: Vec<f64> = (0..29).map(|i| 1.0 / (1.0 + i as f64).powf(1.4)).collect();
    let pairs_per_cell = 4usize;

    // Train GEDIOT briefly on perturbation pairs of the same distribution.
    let mut train_pairs = Vec::new();
    for _ in 0..60 {
        let n = sizes[rng.gen_range(0..sizes.len())];
        let g = generate::random_connected(n, n / 4, &weights, &mut rng);
        let delta = 1 + rng.gen_range(0..10);
        let p = generate::perturb_with_edits(&g, delta, 29, &mut rng);
        train_pairs.push(GedPair::supervised(g, p.graph, p.applied as f64, p.mapping));
    }
    let mut gediot = Gediot::new(GediotConfig::small(29), &mut rng);
    gediot.train(&train_pairs, cfg.epochs.min(8), &mut rng);

    let mut out = String::from(
        "== Figure 15: running time vs exact solvers (sec/100p; '>' = budget exceeded) ==\n",
    );
    let _ = writeln!(
        out,
        "{:<10} {:>5} {:>14} {:>14} {:>14}",
        "n", "GED", "A*-exact", "A*-Beam(100)", "GEDIOT"
    );
    for &n in &sizes {
        for &delta in &deltas {
            let pairs: Vec<GedPair> = (0..pairs_per_cell)
                .map(|_| {
                    let g = generate::random_connected(n, n / 4, &weights, &mut rng);
                    let p = generate::perturb_with_edits(&g, delta, 29, &mut rng);
                    GedPair::supervised(g, p.graph, p.applied as f64, p.mapping)
                })
                .collect();

            // Exact A* with a budget: measure time; mark timeouts.
            let budget = 60_000usize;
            let start = Instant::now();
            let mut timeouts = 0usize;
            for p in &pairs {
                if astar_exact_with_limit(&p.g1, &p.g2, budget).is_none() {
                    timeouts += 1;
                }
            }
            let t_exact = start.elapsed().as_secs_f64() / pairs.len() as f64 * 100.0;

            let start = Instant::now();
            for p in &pairs {
                let _ = astar_beam(&p.g1, &p.g2, 100);
            }
            let t_beam = start.elapsed().as_secs_f64() / pairs.len() as f64 * 100.0;

            let start = Instant::now();
            for p in &pairs {
                let _ = gediot.predict(&p.g1, &p.g2);
            }
            let t_iot = start.elapsed().as_secs_f64() / pairs.len() as f64 * 100.0;

            let exact_label = if timeouts > 0 {
                format!(">{t_exact:.2} ({timeouts}TO)")
            } else {
                format!("{t_exact:.2}")
            };
            let _ = writeln!(
                out,
                "{:<10} {:>5} {:>14} {:>14.2} {:>14.2}",
                n, delta, exact_label, t_beam, t_iot
            );
        }
    }
    out
}

/// Figure 16: large synthetic power-law graphs — GED relative error and
/// running time.
#[must_use]
pub fn run_fig16(cfg: &ExpConfig) -> String {
    let mut rng = cfg.rng();
    let sizes: &[usize] = if cfg.dataset_size >= 100 {
        &[50, 100, 200, 400]
    } else {
        &[50, 100, 200]
    };
    let pairs_per_size = 4usize;

    // Train GEDIOT and GEDGNN on power-law perturbation pairs (small size).
    let mut train_pairs = Vec::new();
    for _ in 0..40 {
        let g = generate::barabasi_albert(50, 2, &mut rng);
        let delta = 1 + rng.gen_range(0..10);
        let p = generate::perturb_with_edits(&g, delta, 1, &mut rng);
        train_pairs.push(GedPair::supervised(g, p.graph, p.applied as f64, p.mapping));
    }
    let mut gediot = Gediot::new(GediotConfig::small(1), &mut rng);
    gediot.train(&train_pairs, cfg.epochs.min(5), &mut rng);
    let mut gedgnn = Gedgnn::new(GedgnnConfig::small(1), &mut rng);
    gedgnn.train(&train_pairs, cfg.epochs.min(5), &mut rng);

    let mut out = String::from("== Figure 16: power-law graphs (relative error | sec/100p) ==\n");
    let _ = writeln!(
        out,
        "{:<6} {:>18} {:>18} {:>18} {:>18}",
        "n", "GEDGNN", "GEDIOT", "GEDGW", "GEDHOT"
    );
    for &n in sizes {
        let pairs: Vec<GedPair> = (0..pairs_per_size)
            .map(|_| {
                let g = generate::barabasi_albert(n, 2, &mut rng);
                let delta = 2 + rng.gen_range(0..8);
                let p = generate::perturb_with_edits(&g, delta, 1, &mut rng);
                GedPair::supervised(g, p.graph, p.applied as f64, p.mapping)
            })
            .collect();

        // Paths (via the k-best framework) are the paper's protocol here.
        let k = 4usize;
        let run = |f: &dyn Fn(&GedPair) -> f64| -> (f64, f64) {
            let start = Instant::now();
            let mut rel = 0.0;
            for p in &pairs {
                let pred = f(p);
                let gt = p.ged.expect("supervised");
                rel += (pred - gt).abs() / gt.max(1.0);
            }
            let t = start.elapsed().as_secs_f64() / pairs.len() as f64 * 100.0;
            (rel / pairs.len() as f64, t)
        };
        let (e_gnn, t_gnn) = run(&|p| {
            let (_, path) = gedgnn.predict_with_path(&p.g1, &p.g2, k);
            path.ged as f64
        });
        let (e_iot, t_iot) = run(&|p| {
            let (_, path) = gediot.predict_with_path(&p.g1, &p.g2, k);
            path.ged as f64
        });
        let (e_gw, t_gw) = run(&|p| {
            let gw = Gedgw::new(&p.g1, &p.g2).solve();
            kbest_edit_path(&p.g1, &p.g2, &gw.coupling, k).ged as f64
        });
        let (e_hot, t_hot) = run(&|p| {
            let iot = gediot.predict(&p.g1, &p.g2);
            let gw = Gedgw::new(&p.g1, &p.g2).solve();
            let a = kbest_edit_path(&p.g1, &p.g2, &iot.coupling, k).ged;
            let b = kbest_edit_path(&p.g1, &p.g2, &gw.coupling, k).ged;
            a.min(b) as f64
        });
        let _ = writeln!(
            out,
            "{:<6} {:>9.2}|{:>8.1} {:>9.2}|{:>8.1} {:>9.2}|{:>8.1} {:>9.2}|{:>8.1}",
            n, e_gnn, t_gnn, e_iot, t_iot, e_gw, t_gw, e_hot, t_hot
        );
    }
    out
}

/// Shared driver for the Figure 17-20 GEDIOT hyperparameter sweeps.
fn sweep_gediot(
    cfg: &ExpConfig,
    label: &str,
    values: &[f64],
    configure: impl Fn(GediotConfig, f64) -> GediotConfig,
    train_fraction: impl Fn(f64) -> f64,
) -> String {
    let mut rng = cfg.rng();
    let prep = prepare(DatasetKind::Aids, cfg, false, &mut rng);
    let mut out = format!("== Sweep over {label} (AIDS) ==\n");
    let _ = writeln!(
        out,
        "{:<8} {:>7} {:>9} {:>12} {:>12}",
        label, "MAE", "Accuracy", "train(s)", "infer(s/100p)"
    );
    for &v in values {
        let base = GediotConfig::small(prep.kind.num_labels() as usize);
        let mut model = Gediot::new(configure(base, v), &mut rng);
        let frac = train_fraction(v).clamp(0.05, 1.0);
        let n_train = ((prep.train_pairs.len() as f64) * frac).ceil() as usize;
        let subset = &prep.train_pairs[..n_train.min(prep.train_pairs.len())];
        let t0 = Instant::now();
        model.train(subset, cfg.epochs, &mut rng);
        let train_time = t0.elapsed().as_secs_f64();

        let mut outcomes = Vec::new();
        let t1 = Instant::now();
        let mut count = 0usize;
        for group in &prep.test_groups {
            for pair in group {
                let pred = model.predict(&pair.g1, &pair.g2).ged;
                outcomes.push(PairOutcome {
                    pred,
                    gt: pair.ged.expect("supervised"),
                });
                count += 1;
            }
        }
        let infer = t1.elapsed().as_secs_f64() / count.max(1) as f64 * 100.0;
        let _ = writeln!(
            out,
            "{:<8.3} {:>7.3} {:>8.1}% {:>12.2} {:>12.3}",
            v,
            metrics::mae(&outcomes),
            metrics::accuracy(&outcomes) * 100.0,
            train_time,
            infer
        );
    }
    out
}

/// Figure 17: varying the initial Sinkhorn regularization ε0.
#[must_use]
pub fn run_fig17(cfg: &ExpConfig) -> String {
    sweep_gediot(
        cfg,
        "eps0",
        &[0.005, 0.01, 0.05, 0.1, 0.5, 1.0],
        |mut c, v| {
            c.epsilon0 = v;
            c
        },
        |_| 1.0,
    )
}

/// Figure 18: varying the number of unrolled Sinkhorn iterations.
#[must_use]
pub fn run_fig18(cfg: &ExpConfig) -> String {
    sweep_gediot(
        cfg,
        "iters",
        &[1.0, 5.0, 10.0, 15.0, 20.0],
        |mut c, v| {
            c.sinkhorn_iters = v as usize;
            c
        },
        |_| 1.0,
    )
}

/// Figure 19: varying the loss balance λ.
#[must_use]
pub fn run_fig19(cfg: &ExpConfig) -> String {
    sweep_gediot(
        cfg,
        "lambda",
        &[0.5, 0.6, 0.7, 0.8, 0.9],
        |mut c, v| {
            c.lambda = v;
            c
        },
        |_| 1.0,
    )
}

/// Figure 20: varying the training-set size (fraction of the pair pool).
#[must_use]
pub fn run_fig20(cfg: &ExpConfig) -> String {
    sweep_gediot(
        cfg,
        "frac",
        &[0.1, 0.2, 0.4, 0.6, 0.8, 1.0],
        |c, _| c,
        |v| v,
    )
}

/// Figure 21: varying `k` in k-best matching for GEP generation.
#[must_use]
pub fn run_fig21(cfg: &ExpConfig) -> String {
    let mut rng = cfg.rng();
    let prep = prepare(DatasetKind::Aids, cfg, false, &mut rng);
    let models = train_all(&prep, cfg, &mut rng);
    let ens = Gedhot::new(&models.gediot);

    let mut out = String::from("== Figure 21 (AIDS): varying k in k-best GEP generation ==\n");
    let _ = writeln!(
        out,
        "{:<5} {:>22} {:>22} {:>22}",
        "k", "GEDIOT (MAE|acc|s/100p)", "GEDGW", "GEDHOT"
    );
    for k in [1usize, 5, 10, 25, 50, 100] {
        let run = |f: &dyn Fn(&GedPair) -> usize| -> (f64, f64, f64) {
            let mut outcomes = Vec::new();
            let start = Instant::now();
            let mut count = 0usize;
            for group in &prep.test_groups {
                for pair in group {
                    let pred = f(pair) as f64;
                    outcomes.push(PairOutcome {
                        pred,
                        gt: pair.ged.expect("supervised"),
                    });
                    count += 1;
                }
            }
            let t = start.elapsed().as_secs_f64() / count.max(1) as f64 * 100.0;
            (metrics::mae(&outcomes), metrics::accuracy(&outcomes), t)
        };
        let iot = run(&|p| models.gediot.predict_with_path(&p.g1, &p.g2, k).1.ged);
        let gw = run(&|p| Gedgw::new(&p.g1, &p.g2).solve_with_path(k).1.ged);
        let hot = run(&|p| ens.predict_with_path(&p.g1, &p.g2, k).1.ged);
        let _ = writeln!(
            out,
            "{:<5} {:>8.3}|{:>5.1}%|{:>6.2} {:>8.3}|{:>5.1}%|{:>6.2} {:>8.3}|{:>5.1}%|{:>6.2}",
            k,
            iot.0,
            iot.1 * 100.0,
            iot.2,
            gw.0,
            gw.1 * 100.0,
            gw.2,
            hot.0,
            hot.1 * 100.0,
            hot.2
        );
    }
    out
}

/// Classic baseline included for completeness in Figure 8/12 comparisons.
#[must_use]
pub fn classic_value(pair: &GedPair) -> f64 {
    classic_ged(&pair.g1, &pair.g2).ged as f64
}

/// Exact range search at store scale: the three-tier
/// filter–prune–verify plan (`GedQuery::RangeExact`) over an AIDS-like
/// store, per-τ tier statistics and wall clock, including the τ = ∞
/// degradation to full exact scans under a node-expansion budget.
#[must_use]
pub fn run_exact_search(cfg: &ExpConfig) -> String {
    use ged_core::solver::{GedgwSolver, SolverRegistry};

    let mut rng = cfg.rng();
    let store = GraphDataset::aids_like(cfg.dataset_size, &mut rng).into_store();
    let query = store.graphs().next().expect("non-empty store").clone();

    let mut registry = SolverRegistry::new();
    registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
    let engine = GedEngine::builder(registry)
        .verify_budget(50_000)
        .build()
        .expect("GEDGW is registered");

    let mut out = String::from("== Exact range search: filter / prune / verify tiers ==\n");
    let _ = writeln!(
        out,
        "store: {} AIDS-like graphs; query: member, {} nodes / {} edges; budget: 50k expansions",
        store.len(),
        query.num_nodes(),
        query.num_edges()
    );
    let _ = writeln!(
        out,
        "{:>6} {:>8} {:>9} {:>15} {:>9} {:>7} {:>9}",
        "tau", "matches", "filtered", "accepted-early", "verified", "budget", "ms"
    );
    for tau in [2.0, 4.0, 6.0, 8.0, f64::INFINITY] {
        let start = Instant::now();
        let result = engine
            .range_exact(&query, &store, tau)
            .expect("valid query");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let label = if tau.is_infinite() {
            "inf".to_string()
        } else {
            format!("{tau}")
        };
        let _ = writeln!(
            out,
            "{label:>6} {:>8} {:>9} {:>15} {:>9} {:>7} {:>9.2}",
            result.matches.len(),
            result.stats.filtered,
            result.stats.accepted_early,
            result.stats.verified,
            result.stats.budget_exceeded,
            ms
        );
    }
    out
}

/// Pivot-table pruning at store scale: the exact range plan with
/// `p ∈ {0, 2, 4, 8}` pivots over one AIDS-like store — per-p tier
/// statistics, the isolated table-build cost, and the per-query serving
/// wall clock (a serving store amortizes the former over the latter).
#[must_use]
pub fn run_pivot_search(cfg: &ExpConfig) -> String {
    use ged_core::solver::{GedgwSolver, SolverRegistry};

    let mut rng = cfg.rng();
    let store = GraphDataset::aids_like(cfg.dataset_size, &mut rng).into_store();
    let query = store.graphs().next().expect("non-empty store").clone();
    let tau = 4.0;

    let mut out = String::from("== Pivot index: triangle-inequality pruning ==\n");
    let _ = writeln!(
        out,
        "store: {} AIDS-like graphs; query: member; tau = {tau}",
        store.len()
    );
    let _ = writeln!(
        out,
        "{:>3} {:>8} {:>8} {:>9} {:>7} {:>15} {:>9} {:>10} {:>9}",
        "p",
        "matches",
        "pr-piv",
        "filtered",
        "ac-piv",
        "accepted-early",
        "verified",
        "build-ms",
        "query-ms"
    );
    for pivots in [0usize, 2, 4, 8] {
        let mut registry = SolverRegistry::new();
        registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
        let engine = GedEngine::builder(registry)
            .pivots(pivots)
            .build()
            .expect("GEDGW is registered");
        // `pivot_ids` forces the table build in isolation (a no-op for
        // p = 0), so build-ms is pure index construction and query-ms is
        // pure serving.
        let start = Instant::now();
        let _ = engine.pivot_ids(&store);
        let build_ms = start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        let result = engine.range_exact(&query, &store, tau).expect("valid");
        let query_ms = start.elapsed().as_secs_f64() * 1e3;
        let _ = writeln!(
            out,
            "{pivots:>3} {:>8} {:>8} {:>9} {:>7} {:>15} {:>9} {:>10.2} {:>9.2}",
            result.matches.len(),
            result.stats.pruned_pivot,
            result.stats.filtered,
            result.stats.accepted_pivot,
            result.stats.accepted_early,
            result.stats.verified,
            build_ms,
            query_ms
        );
    }
    out
}

/// One experiment section: name + runner.
type Section = (&'static str, fn(&ExpConfig) -> String);

/// Runs every experiment and concatenates the reports.
#[must_use]
pub fn run_all(cfg: &ExpConfig) -> String {
    let sections: Vec<Section> = vec![
        ("table2", run_table2),
        ("table3", run_table3),
        ("table4", run_table4),
        ("table5", run_table5),
        ("table6", run_table6),
        ("fig8", run_fig8),
        ("fig12", run_fig12),
        ("fig13", run_fig13),
        ("fig14", run_fig14),
        ("fig15", run_fig15),
        ("fig16", run_fig16),
        ("fig17", run_fig17),
        ("fig18", run_fig18),
        ("fig19", run_fig19),
        ("fig20", run_fig20),
        ("fig21", run_fig21),
        ("exact_search", run_exact_search),
        ("pivot_search", run_pivot_search),
    ];
    let mut out = String::new();
    for (name, f) in sections {
        let start = Instant::now();
        let section = f(cfg);
        let _ = writeln!(
            out,
            "{section}[{name} finished in {:.1}s]\n",
            start.elapsed().as_secs_f64()
        );
        eprintln!("[{name}] done in {:.1}s", start.elapsed().as_secs_f64());
    }
    out
}
