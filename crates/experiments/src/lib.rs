//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (Section 6 and Appendix G) on the synthetic dataset
//! stand-ins.
//!
//! Each experiment is a library function (`run_table3`, `run_fig15`, …)
//! with a thin binary wrapper in `src/bin/`, so `cargo run -p
//! ged-experiments --release --bin table3_ged` regenerates the
//! corresponding rows. `run_all` chains everything and is what produced
//! `EXPERIMENTS.md`.
//!
//! Scale: the env var `GED_SCALE` selects `quick` (CI-sized, default) or
//! `full` (closer to the paper's protocol; minutes of CPU time).
//!
//! All method dispatch goes through the `ged_core::engine::GedEngine`
//! query API ([`MethodKind`] is re-exported from `ged-core`); the
//! harness builds one engine per trained model zoo via
//! [`TrainedModels::engine`].

#![warn(missing_docs)]

pub mod exp;
pub mod harness;

pub use harness::{ExpConfig, MethodKind, PreparedDataset, TrainedModels, ValueRow};
