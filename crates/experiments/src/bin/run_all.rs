//! Runs every experiment and writes the combined report to
//! `experiments_output.txt` (and stdout).
fn main() {
    let cfg = ged_experiments::ExpConfig::from_env();
    let report = ged_experiments::exp::run_all(&cfg);
    print!("{report}");
    if let Err(e) = std::fs::write("experiments_output.txt", &report) {
        eprintln!("could not write experiments_output.txt: {e}");
    }
}
