//! Regenerates the corresponding table/figure of the paper.
fn main() {
    let cfg = ged_experiments::ExpConfig::from_env();
    print!("{}", ged_experiments::exp::run_fig17(&cfg));
}
