//! Regenerates the pivot-index pruning report (triangle-inequality
//! bounds as an extra tier of the exact range-search plan).
fn main() {
    let cfg = ged_experiments::ExpConfig::from_env();
    print!("{}", ged_experiments::exp::run_pivot_search(&cfg));
}
