//! Regenerates the exact range-search tier report (the store-level form
//! of the paper's Section 2 threshold workload).
fn main() {
    let cfg = ged_experiments::ExpConfig::from_env();
    print!("{}", ged_experiments::exp::run_exact_search(&cfg));
}
