//! Shared experiment plumbing: dataset preparation, ground-truth
//! generation, model training, and the evaluation loops behind Tables 3-6.
//!
//! All method dispatch goes through [`GedEngine`]: the model zoo builds a
//! [`MethodKind`]-keyed registry, [`TrainedModels::engine`] wraps it into
//! an engine, and the `eval_*` loops issue typed [`GedQuery`] batches.

use ged_baselines::astar::astar_exact_with_limit;
use ged_baselines::gedgnn::{Gedgnn, GedgnnConfig};
use ged_baselines::simgnn::{Simgnn, SimgnnConfig, SimgnnVariant};
use ged_baselines::solvers::{ClassicSolver, GedgnnSolver, NoahSolver, SimgnnSolver, TagsimSolver};
use ged_baselines::tagsim::{TagSim, TagSimConfig};
use ged_core::engine::{GedEngine, GedQuery};
use ged_core::error::GedError;
use ged_core::gediot::{Gediot, GediotConfig};
use ged_core::pairs::GedPair;
use ged_core::solver::{BatchRunner, GedgwSolver, GedhotSolver, GediotSolver, SolverRegistry};
use ged_eval::metrics::{self, GroupedRanking, PairOutcome};
use ged_graph::{generate, DatasetKind, GraphDataset, GraphId, Split};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

pub use ged_core::method::MethodKind;

/// A* expansion budget when labeling pairs exactly.
const ASTAR_BUDGET: usize = 300_000;

/// Experiment sizing.
#[derive(Clone, Copy, Debug)]
pub struct ExpConfig {
    /// Graphs per synthetic dataset.
    pub dataset_size: usize,
    /// Partners sampled per test query.
    pub partners: usize,
    /// Cap on training pairs.
    pub train_pair_cap: usize,
    /// Training epochs for every neural model.
    pub epochs: usize,
    /// `k` for k-best GEP generation.
    pub kbest_k: usize,
    /// Maximum test queries evaluated.
    pub max_queries: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ExpConfig {
    /// CI-sized defaults.
    #[must_use]
    pub fn quick() -> Self {
        ExpConfig {
            dataset_size: 70,
            partners: 14,
            train_pair_cap: 400,
            epochs: 18,
            kbest_k: 12,
            max_queries: 10,
            seed: 20_250_612,
        }
    }

    /// A larger run closer to the paper's protocol.
    #[must_use]
    pub fn full() -> Self {
        ExpConfig {
            dataset_size: 160,
            partners: 25,
            train_pair_cap: 1200,
            epochs: 25,
            kbest_k: 20,
            max_queries: 16,
            seed: 20_250_612,
        }
    }

    /// Reads `GED_SCALE` (`quick` default, `full` for the larger run).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("GED_SCALE").as_deref() {
            Ok("full") => Self::full(),
            _ => Self::quick(),
        }
    }

    /// A deterministic RNG for this configuration.
    #[must_use]
    pub fn rng(&self) -> SmallRng {
        SmallRng::seed_from_u64(self.seed)
    }
}

/// A dataset with splits, supervised training pairs and per-query test
/// groups (the paper's similarity-search layout).
pub struct PreparedDataset {
    /// Which dataset this imitates.
    pub kind: DatasetKind,
    /// The graphs, behind stable [`GraphId`]s.
    pub dataset: GraphDataset,
    /// 60/20/20 split (graph ids into `dataset`).
    pub split: Split,
    /// Supervised training pairs.
    pub train_pairs: Vec<GedPair>,
    /// Test groups: one vector of supervised pairs per query graph.
    pub test_groups: Vec<Vec<GedPair>>,
}

/// Labels an (ordered) pair with exact A* ground truth when affordable.
fn label_pair(g1: &ged_graph::Graph, g2: &ged_graph::Graph) -> Option<GedPair> {
    let (a, b, _) = ged_core::pairs::ordered(g1, g2);
    if a.num_nodes() > 10 || b.num_nodes() > 10 {
        return None;
    }
    let res = astar_exact_with_limit(a, b, ASTAR_BUDGET)?;
    Some(GedPair::supervised(
        a.clone(),
        b.clone(),
        res.ged as f64,
        res.mapping,
    ))
}

/// Builds a supervised pair from a graph and a Δ-perturbed copy (the
/// paper's ground-truth technique for >10-node graphs).
fn perturbed_pair<R: Rng>(
    g: &ged_graph::Graph,
    delta: usize,
    num_labels: u32,
    rng: &mut R,
) -> GedPair {
    let p = generate::perturb_with_edits(g, delta, num_labels, rng);
    GedPair::supervised(g.clone(), p.graph, p.applied as f64, p.mapping)
}

/// Prepares a dataset following Section 6.1: exact ground truth for pairs
/// of ≤10-node graphs, Δ-perturbation partners for larger graphs.
/// `partners_from_test` switches to the Table 5 protocol (both graphs of a
/// test pair unseen during training).
pub fn prepare(
    kind: DatasetKind,
    cfg: &ExpConfig,
    partners_from_test: bool,
    rng: &mut SmallRng,
) -> PreparedDataset {
    let dataset = GraphDataset::build(kind, cfg.dataset_size, rng);
    let split = dataset.split(rng);
    let num_labels = kind.num_labels();

    // Training pairs: all pairs of small training graphs (exact GT), plus
    // perturbation pairs for large training graphs.
    let mut train_pairs = Vec::new();
    let small_train: Vec<GraphId> = split
        .train
        .iter()
        .copied()
        .filter(|&i| dataset[i].num_nodes() <= 10)
        .collect();
    let mut all = ged_graph::dataset::all_pairs(&small_train);
    all.shuffle(rng);
    for (i, j) in all {
        if train_pairs.len() >= cfg.train_pair_cap {
            break;
        }
        if let Some(p) = label_pair(&dataset[i], &dataset[j]) {
            train_pairs.push(p);
        }
    }
    for &i in &split.train {
        if dataset[i].num_nodes() > 10 && train_pairs.len() < cfg.train_pair_cap + 60 {
            let delta = 1 + rng.gen_range(0..8);
            train_pairs.push(perturbed_pair(&dataset[i], delta, num_labels, rng));
        }
    }

    // Test groups.
    let pool: &[GraphId] = if partners_from_test {
        &split.test
    } else {
        &split.train
    };
    let mut test_groups = Vec::new();
    for &q in split.test.iter().take(cfg.max_queries) {
        let qg = &dataset[q];
        let mut group = Vec::new();
        if qg.num_nodes() <= 10 {
            let candidates: Vec<GraphId> = pool
                .iter()
                .copied()
                .filter(|&i| i != q && dataset[i].num_nodes() <= 10)
                .collect();
            let sample: Vec<GraphId> = candidates
                .choose_multiple(rng, cfg.partners)
                .copied()
                .collect();
            for i in sample {
                if let Some(p) = label_pair(qg, &dataset[i]) {
                    group.push(p);
                }
            }
        } else {
            // Large query: synthetic partners with known Δ.
            for _ in 0..cfg.partners {
                let delta = 1 + rng.gen_range(0..10);
                group.push(perturbed_pair(qg, delta, num_labels, rng));
            }
        }
        if group.len() >= 2 {
            test_groups.push(group);
        }
    }

    PreparedDataset {
        kind,
        dataset,
        split,
        train_pairs,
        test_groups,
    }
}

/// The trained model zoo shared by the evaluation tables.
///
/// Models sit behind [`Arc`] so [`TrainedModels::registry`] can hand the
/// same trained weights to several solvers (GEDHOT reuses GEDIOT, Noah
/// reuses GEDGNN) without retraining or cloning parameters.
pub struct TrainedModels {
    /// SimGNN baseline.
    pub simgnn: Arc<Simgnn>,
    /// GPN stand-in (GCN-flavored regressor).
    pub gpn: Arc<Simgnn>,
    /// TaGSim baseline.
    pub tagsim: Arc<TagSim>,
    /// GEDGNN baseline.
    pub gedgnn: Arc<Gedgnn>,
    /// Our GEDIOT model.
    pub gediot: Arc<Gediot>,
}

impl TrainedModels {
    /// Builds the full Table-3 solver lineup — every [`MethodKind`] mapped
    /// to a boxed solver, registered in the paper's row order. `k` is the
    /// search effort used where a method needs one for *value* prediction
    /// (Noah's beam width).
    #[must_use]
    pub fn registry(&self, k: usize) -> SolverRegistry {
        let mut reg = SolverRegistry::new();
        reg.register(
            MethodKind::SimGnn,
            Box::new(SimgnnSolver::new("SimGNN", Arc::clone(&self.simgnn))),
        );
        reg.register(
            MethodKind::Gpn,
            Box::new(SimgnnSolver::new("GPN", Arc::clone(&self.gpn))),
        );
        reg.register(
            MethodKind::TaGSim,
            Box::new(TagsimSolver::new(Arc::clone(&self.tagsim))),
        );
        reg.register(
            MethodKind::GedGnn,
            Box::new(GedgnnSolver::new(Arc::clone(&self.gedgnn))),
        );
        reg.register(
            MethodKind::Gediot,
            Box::new(GediotSolver::new(Arc::clone(&self.gediot))),
        );
        reg.register(MethodKind::Classic, Box::new(ClassicSolver));
        reg.register(MethodKind::Gedgw, Box::new(GedgwSolver));
        reg.register(
            MethodKind::Noah,
            Box::new(NoahSolver::new(Arc::clone(&self.gedgnn)).with_beam(k)),
        );
        reg.register(
            MethodKind::Gedhot,
            Box::new(GedhotSolver::new(Arc::clone(&self.gediot))),
        );
        reg
    }

    /// Wraps the full registry into a [`GedEngine`]: GEDHOT as the default
    /// method, edit-path beam width `k` (clamped to ≥ 1), and
    /// `GED_THREADS`-controlled parallelism.
    #[must_use]
    pub fn engine(&self, k: usize) -> GedEngine {
        GedEngine::builder(self.registry(k))
            .method(MethodKind::Gedhot)
            .beam_width(k.max(1))
            .runner(BatchRunner::from_env())
            .build()
            .expect("the full Table-3 registry always builds")
    }
}

/// Trains every neural model on the prepared training pairs.
pub fn train_all(prep: &PreparedDataset, cfg: &ExpConfig, rng: &mut SmallRng) -> TrainedModels {
    let nl = prep.kind.num_labels() as usize;
    let mut simgnn = Simgnn::new(SimgnnConfig::small(nl, SimgnnVariant::SimGnn), rng);
    let mut gpn = Simgnn::new(SimgnnConfig::small(nl, SimgnnVariant::Gpn), rng);
    let mut tagsim = TagSim::new(TagSimConfig::small(nl), rng);
    let mut gedgnn = Gedgnn::new(GedgnnConfig::small(nl), rng);
    let mut gediot = Gediot::new(GediotConfig::small(nl), rng);
    simgnn.train(&prep.train_pairs, cfg.epochs, rng);
    gpn.train(&prep.train_pairs, cfg.epochs, rng);
    tagsim.train(&prep.train_pairs, cfg.epochs, rng);
    gedgnn.train(&prep.train_pairs, cfg.epochs, rng);
    gediot.train(&prep.train_pairs, cfg.epochs, rng);
    TrainedModels {
        simgnn: Arc::new(simgnn),
        gpn: Arc::new(gpn),
        tagsim: Arc::new(tagsim),
        gedgnn: Arc::new(gedgnn),
        gediot: Arc::new(gediot),
    }
}

/// One table row of value/ranking metrics.
#[derive(Clone, Debug)]
pub struct ValueRow {
    /// Which method the row measures (rendered via its `Display` name).
    pub method: MethodKind,
    /// Mean absolute error.
    pub mae: f64,
    /// Rounded-equality accuracy.
    pub accuracy: f64,
    /// Mean Spearman ρ over query groups.
    pub rho: f64,
    /// Mean Kendall τ over query groups.
    pub tau: f64,
    /// Mean p@5 over query groups (the paper uses p@10/p@20; the scaled
    /// partner count makes 5/10 the comparable cut-offs).
    pub p_at_5: f64,
    /// Mean p@10 over query groups.
    pub p_at_10: f64,
    /// Feasibility ratio.
    pub feasibility: f64,
    /// Seconds per 100 pairs.
    pub time_per_100: f64,
    /// Path precision (Table 4 only; 0 otherwise).
    pub precision: f64,
    /// Path recall (Table 4 only; 0 otherwise).
    pub recall: f64,
    /// Path F1 (Table 4 only; 0 otherwise).
    pub f1: f64,
}

/// Evaluates value metrics of one method over the test groups (Table 3 row).
///
/// Dispatch is a typed [`GedQuery::Value`] batch through the engine
/// (parallel, input-order-preserving, and bit-identical to a sequential
/// loop); the metric accumulation below is sequential and deterministic.
///
/// # Errors
/// Propagates any [`GedError`] from the engine (e.g. the method is not
/// registered).
pub fn eval_value(
    engine: &GedEngine,
    prep: &PreparedDataset,
    method: MethodKind,
) -> Result<ValueRow, GedError> {
    let flat: Vec<&GedPair> = prep.test_groups.iter().flatten().collect();
    let queries: Vec<GedQuery<'_>> = flat.iter().map(|p| GedQuery::Value { pair: p }).collect();
    let start = Instant::now();
    let responses = engine.query_batch_as(method, &queries);
    let elapsed = start.elapsed().as_secs_f64();
    let count = flat.len();
    let mut all_preds = Vec::with_capacity(count);
    for response in responses {
        let value = response?
            .into_value()
            .expect("Value queries yield Value responses");
        all_preds.push(value.ged);
    }

    let mut outcomes = Vec::new();
    let mut ranking = GroupedRanking::new();
    let mut next_pred = all_preds.into_iter();
    for group in &prep.test_groups {
        let mut preds = Vec::with_capacity(group.len());
        let mut gts = Vec::with_capacity(group.len());
        for pair in group {
            let pred = next_pred.next().expect("one prediction per pair");
            let gt = pair.ged.expect("test pairs are supervised");
            outcomes.push(PairOutcome { pred, gt });
            preds.push(pred);
            gts.push(gt);
        }
        ranking.push_group(preds, gts);
    }
    Ok(ValueRow {
        method,
        mae: metrics::mae(&outcomes),
        accuracy: metrics::accuracy(&outcomes),
        rho: ranking.mean_spearman(),
        tau: ranking.mean_kendall(),
        p_at_5: ranking.mean_precision_at(5),
        p_at_10: ranking.mean_precision_at(10),
        feasibility: metrics::feasibility(&outcomes),
        time_per_100: elapsed / count.max(1) as f64 * 100.0,
        precision: 0.0,
        recall: 0.0,
        f1: 0.0,
    })
}

/// Evaluates GEP-generation metrics of one method (Table 4 row).
///
/// Path generation is a typed [`GedQuery::Path`] batch through the
/// engine; see [`eval_value`] for the parallelism contract.
///
/// # Errors
/// Propagates any [`GedError`] from the engine — in particular
/// [`GedError::PathsUnsupported`] for non-Table-4 methods.
pub fn eval_path(
    engine: &GedEngine,
    prep: &PreparedDataset,
    method: MethodKind,
    k: usize,
) -> Result<ValueRow, GedError> {
    let flat: Vec<&GedPair> = prep.test_groups.iter().flatten().collect();
    let queries: Vec<GedQuery<'_>> = flat
        .iter()
        .map(|p| GedQuery::Path {
            pair: p,
            k: Some(k),
        })
        .collect();
    let start = Instant::now();
    let responses = engine.query_batch_as(method, &queries);
    let elapsed = start.elapsed().as_secs_f64();
    let count = flat.len();
    let mut all_paths = Vec::with_capacity(count);
    for response in responses {
        let path = response?
            .into_path()
            .expect("Path queries yield Path responses");
        all_paths.push(path);
    }

    let mut outcomes = Vec::new();
    let mut ranking = GroupedRanking::new();
    let (mut psum, mut rsum, mut fsum) = (0.0, 0.0, 0.0);
    let mut next_path = all_paths.into_iter();
    for group in &prep.test_groups {
        let mut preds = Vec::with_capacity(group.len());
        let mut gts = Vec::with_capacity(group.len());
        for pair in group {
            let est = next_path.next().expect("one path per pair");
            let gt = pair.ged.expect("test pairs are supervised");
            let gt_ops = pair
                .mapping
                .as_ref()
                .expect("test pairs carry mappings")
                .canonical_ops(&pair.g1, &pair.g2);
            let (p, r) = metrics::path_precision_recall(&est.ops, &gt_ops);
            psum += p;
            rsum += r;
            fsum += metrics::path_f1(p, r);
            outcomes.push(PairOutcome {
                pred: est.ged as f64,
                gt,
            });
            preds.push(est.ged as f64);
            gts.push(gt);
        }
        ranking.push_group(preds, gts);
    }
    let n = count.max(1) as f64;
    Ok(ValueRow {
        method,
        mae: metrics::mae(&outcomes),
        accuracy: metrics::accuracy(&outcomes),
        rho: ranking.mean_spearman(),
        tau: ranking.mean_kendall(),
        p_at_5: ranking.mean_precision_at(5),
        p_at_10: ranking.mean_precision_at(10),
        feasibility: metrics::feasibility(&outcomes),
        time_per_100: elapsed / n * 100.0,
        precision: psum / n,
        recall: rsum / n,
        f1: fsum / n,
    })
}

/// Renders value rows as a fixed-width table (Table 3/5 layout).
#[must_use]
pub fn format_value_table(title: &str, rows: &[ValueRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!(
        "{:<9} {:>7} {:>9} {:>7} {:>7} {:>7} {:>7} {:>11} {:>12}\n",
        "Method", "MAE", "Accuracy", "rho", "tau", "p@5", "p@10", "Feasibility", "sec/100p"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<9} {:>7.3} {:>8.1}% {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>10.1}% {:>12.3}\n",
            r.method,
            r.mae,
            r.accuracy * 100.0,
            r.rho,
            r.tau,
            r.p_at_5,
            r.p_at_10,
            r.feasibility * 100.0,
            r.time_per_100
        ));
    }
    out
}

/// Renders path rows as a fixed-width table (Table 4 layout).
#[must_use]
pub fn format_path_table(title: &str, rows: &[ValueRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!(
        "{:<9} {:>7} {:>9} {:>7} {:>7} {:>8} {:>10} {:>7} {:>12}\n",
        "Method", "MAE", "Accuracy", "rho", "tau", "Recall", "Precision", "F1", "sec/100p"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<9} {:>7.3} {:>8.1}% {:>7.3} {:>7.3} {:>8.3} {:>10.3} {:>7.3} {:>12.3}\n",
            r.method,
            r.mae,
            r.accuracy * 100.0,
            r.rho,
            r.tau,
            r.recall,
            r.precision,
            r.f1,
            r.time_per_100
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_cfg() -> ExpConfig {
        ExpConfig {
            dataset_size: 24,
            partners: 4,
            train_pair_cap: 30,
            epochs: 2,
            kbest_k: 4,
            max_queries: 3,
            seed: 7,
        }
    }

    #[test]
    fn prepare_builds_supervised_pairs() {
        let cfg = mini_cfg();
        let mut rng = cfg.rng();
        let prep = prepare(DatasetKind::Aids, &cfg, false, &mut rng);
        assert!(!prep.train_pairs.is_empty());
        assert!(!prep.test_groups.is_empty());
        for p in &prep.train_pairs {
            assert!(p.ged.is_some() && p.mapping.is_some());
            assert!(p.g1.num_nodes() <= p.g2.num_nodes());
        }
    }

    #[test]
    fn end_to_end_value_and_path_rows() {
        let cfg = mini_cfg();
        let mut rng = cfg.rng();
        let prep = prepare(DatasetKind::Linux, &cfg, false, &mut rng);
        let models = train_all(&prep, &cfg, &mut rng);
        let engine = models.engine(cfg.kbest_k);
        for m in [MethodKind::Gediot, MethodKind::Classic, MethodKind::Gedgw] {
            let row = eval_value(&engine, &prep, m).expect("registered method");
            assert!(row.mae.is_finite() && row.mae >= 0.0, "{m:?}");
        }
        // A value regressor cannot answer Path queries — typed error, no
        // panic.
        let err = eval_path(&engine, &prep, MethodKind::SimGnn, cfg.kbest_k).unwrap_err();
        assert_eq!(err, GedError::PathsUnsupported(MethodKind::SimGnn));
        let row = eval_path(&engine, &prep, MethodKind::Gedgw, cfg.kbest_k).expect("path-capable");
        // Path-based estimates are always feasible.
        assert!(
            (row.feasibility - 1.0).abs() < 1e-9,
            "feasibility {}",
            row.feasibility
        );
        assert!(row.f1 > 0.0);
        let txt = format_path_table("t", &[row]);
        assert!(txt.contains("GEDGW"));
    }

    #[test]
    fn registry_exposes_table3_methods_in_paper_row_order() {
        let cfg = mini_cfg();
        let mut rng = cfg.rng();
        let prep = prepare(DatasetKind::Aids, &cfg, false, &mut rng);
        let models = train_all(&prep, &cfg, &mut rng);
        let engine = models.engine(cfg.kbest_k);
        // Exactly the Table-3 method set, in the paper's row order.
        assert_eq!(engine.methods(), MethodKind::table3());
        let expected: Vec<&str> = MethodKind::table3().iter().map(|m| m.name()).collect();
        assert_eq!(
            expected,
            vec![
                "SimGNN", "GPN", "TaGSim", "GEDGNN", "GEDIOT", "Classic", "GEDGW", "Noah", "GEDHOT"
            ]
        );
        // Every method is reachable as a trait object through the engine.
        for m in MethodKind::table3() {
            let solver = engine.solver(m).expect("full lineup");
            assert_eq!(solver.name(), m.name());
        }
        // And the path-capable subset is exactly Table 4.
        let pair = &prep.test_groups[0][0];
        for m in MethodKind::table3() {
            let has_path = engine.edit_path_as(m, pair, Some(4)).is_ok();
            assert_eq!(has_path, MethodKind::table4().contains(&m), "{m:?}");
        }
    }
}
