//! The adaptive query planner: stats-driven tier ordering and collapsed
//! verification, with answers bit-identical to the static plan.
//!
//! Every store query runs through one unified tier pipeline:
//!
//! ```text
//! shard → [label | degree | pivot_lb] → pivot_ub_accept → verify
//!          (commutative discards, planner-ordered)
//! ```
//!
//! The planner records per-tier hit rates (deterministic EWMAs, counts
//! only) and per query reorders the commutative discards, skips tiers
//! with ~0 observed yield, and collapses verification when the pivot
//! interval is already tight (`lb == ub` pins the answer without a
//! solver call). Every decision is result-invariant — this example
//! checks bit-identity against a static engine at each step.
//!
//! Run with: `cargo run --release --example planner_search`

use ot_ged::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn engine(adaptive: bool) -> GedEngine {
    let mut registry = SolverRegistry::new();
    registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
    GedEngine::builder(registry)
        .threads(2)
        .pivots(4)
        .adaptive_planner(adaptive)
        .build()
        .expect("GEDGW is registered")
}

fn show(tag: &str, e: &GedEngine, shape: QueryShape) {
    let plan = e.explain(shape);
    println!(
        "{tag} {:>11}: {}{}  (observations: {})",
        plan.shape.name(),
        plan.tiers.join(" → "),
        if plan.skipped.is_empty() {
            String::new()
        } else {
            format!("  [skipped: {}]", plan.skipped.join(", "))
        },
        plan.observations,
    );
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(4091);
    let store = GraphDataset::aids_like(60, &mut rng).into_store();

    let static_e = engine(false);
    let adaptive_e = engine(true);
    println!("store: {} graphs; pivots: 4\n", store.len());

    println!("plans before any query (adaptive == static until warmed):");
    for shape in [QueryShape::TopK, QueryShape::Range, QueryShape::RangeExact] {
        show("  ", &adaptive_e, shape);
    }
    println!();

    // A mixed workload, every answer checked against the static engine.
    let queries: Vec<Graph> = store.graphs().take(6).cloned().collect();
    for q in &queries {
        let (a, s) = (
            adaptive_e.top_k(q, &store, 5).expect("valid"),
            static_e.top_k(q, &store, 5).expect("valid"),
        );
        assert_eq!(a.neighbors, s.neighbors, "top-k must be bit-identical");
        let (a, s) = (
            adaptive_e.range(q, &store, 6.0).expect("valid"),
            static_e.range(q, &store, 6.0).expect("valid"),
        );
        assert_eq!(a.neighbors, s.neighbors, "range must be bit-identical");
        let (a, s) = (
            adaptive_e.range_exact(q, &store, 3.0).expect("valid"),
            static_e.range_exact(q, &store, 3.0).expect("valid"),
        );
        assert_eq!(a.matches, s.matches, "exact range must be bit-identical");
    }
    println!(
        "mixed workload: {} queries × 3 shapes, all bit-identical ✓",
        queries.len()
    );

    // The skewed part: a query drawn from the engine's own pivot set has
    // a *tight* pivot interval (lb == ub == exact GED) to every stored
    // graph — the triangle inequality is exact through the pivot itself —
    // so collapsed verification answers without a single solver call.
    let pivot_id = adaptive_e.pivot_ids(&store)[0];
    let member = store.get(pivot_id).expect("pivot is stored").clone();
    let before = adaptive_e.planner_counters().expect("planner is on");
    let (a, s) = (
        adaptive_e.range(&member, &store, 6.0).expect("valid"),
        static_e.range(&member, &store, 6.0).expect("valid"),
    );
    assert_eq!(a.neighbors, s.neighbors, "collapse must not change answers");
    let after = adaptive_e.planner_counters().expect("planner is on");
    let saved = after.solver_calls_saved - before.solver_calls_saved;
    assert_eq!(
        saved, s.stats.verified as u64,
        "every verification the static plan ran is collapsed away"
    );
    println!(
        "pivot-member range query: {} solver calls (static) → 0 (adaptive), \
         same {} neighbors ✓",
        s.stats.verified,
        a.neighbors.len()
    );

    // Stored graphs can be queried by id, no clone of the graph needed.
    let by_id = adaptive_e
        .range_by_id(&store, pivot_id, 6.0)
        .expect("stored id");
    assert_eq!(
        by_id.neighbors, a.neighbors,
        "by-id resolves to the same query"
    );
    println!("range_by_id({pivot_id:?}): same answer as the inline query ✓\n");

    println!("plans after the workload (discards reordered by observed yield):");
    for shape in [QueryShape::TopK, QueryShape::Range, QueryShape::RangeExact] {
        show("  ", &adaptive_e, shape);
    }
    let c = adaptive_e.planner_counters().expect("planner is on");
    println!(
        "\nplanner savings: {} solver calls, {} bounded searches, {} pivot arms",
        c.solver_calls_saved, c.searches_saved, c.pivot_arms_saved
    );
}
