//! Graph similarity search over a chemical-compound-like database — the
//! application the paper's introduction motivates (AIDS antiviral
//! screening): given a query compound, retrieve the database compounds
//! with the smallest GED.
//!
//! The example trains a small GEDIOT model on exact ground truth, builds
//! a [`GedEngine`] whose default method is the GEDHOT ensemble, indexes
//! the training compounds in a [`GraphStore`], ranks them with a `TopK`
//! query, and compares the top-5 against the exact ranking.
//!
//! Run with: `cargo run --release --example chemical_similarity_search`

use ot_ged::baselines::astar::astar_exact;
use ot_ged::core::pairs::GedPair;
use ot_ged::core::solver::{GedhotSolver, GediotSolver};
use ot_ged::eval::metrics::{precision_at_k, spearman_rho};
use ot_ged::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let mut rng = SmallRng::seed_from_u64(2025);

    // A small AIDS-like compound database (29 atom labels, ≤ 10 atoms).
    let db = GraphDataset::aids_like(48, &mut rng);
    let split = db.split(&mut rng);
    println!("database: {} compounds, stats: {:?}", db.len(), db.stats());

    // Supervised training pairs from the training split (exact A* GT).
    let mut train_pairs = Vec::new();
    for (a, &i) in split.train.iter().enumerate() {
        for &j in split.train.iter().skip(a + 1).take(14) {
            let (g1, g2, _) = ot_ged::core::pairs::ordered(&db[i], &db[j]);
            let res = astar_exact(g1, g2);
            train_pairs.push(GedPair::supervised(
                g1.clone(),
                g2.clone(),
                res.ged as f64,
                res.mapping,
            ));
        }
    }
    println!(
        "training GEDIOT on {} exactly-labeled pairs ...",
        train_pairs.len()
    );
    let mut model = Gediot::new(GediotConfig::small(29), &mut rng);
    model.train(&train_pairs, 15, &mut rng);
    println!("learned Sinkhorn epsilon: {:.4}", model.epsilon());

    // An engine over the paper's three methods, defaulting to the GEDHOT
    // ensemble; the trained GEDIOT weights are shared via `Arc`.
    let model = Arc::new(model);
    let mut registry = SolverRegistry::new();
    registry.register(
        MethodKind::Gediot,
        Box::new(GediotSolver::new(Arc::clone(&model))),
    );
    registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
    registry.register(MethodKind::Gedhot, Box::new(GedhotSolver::new(model)));
    let engine = GedEngine::builder(registry)
        .method(MethodKind::Gedhot)
        .build()
        .expect("GEDHOT is registered");

    // Query: first test compound; candidates: the training compounds,
    // indexed in their own store.
    let query = &db[split.test[0]];
    let candidates = GraphStore::from_graphs(split.train.iter().map(|&i| db[i].clone()));
    // Ranking metrics need every candidate scored, so this query cannot
    // prune; the top-5 retrieval below is where filter–verify saves work.
    let full = engine
        .top_k(query, &candidates, candidates.len())
        .expect("valid query");
    let result = engine.top_k(query, &candidates, 5).expect("valid query");
    // On a 28-graph candidate set the filter rarely beats the first
    // verification block; see examples/range_search.rs for the stats at
    // sizes where pruning dominates.
    println!(
        "filter–verify for the top-5 query: {} of {} candidates verified ({} pruned)",
        result.stats.verified,
        result.stats.candidates,
        result.stats.pruned()
    );

    // `full.neighbors` is sorted by GED; restore the candidates' id
    // (= insertion) order for the metrics.
    let preds: Vec<f64> = {
        let mut by_id = full.neighbors.clone();
        by_id.sort_by_key(|n| n.id);
        by_id.iter().map(|n| n.ged).collect()
    };
    let exacts: Vec<f64> = candidates
        .graphs()
        .map(|cand| astar_exact(query, cand).ged as f64)
        .collect();
    println!(
        "\nranking quality vs exact GED: spearman rho = {:.3}, p@5 = {:.2}",
        spearman_rho(&preds, &exacts),
        precision_at_k(&preds, &exacts, 5)
    );

    // Positions of candidate-store ids back into the exact-GED list.
    let cand_ids = candidates.ids();
    println!("\ntop-5 most similar compounds (predicted | exact GED):");
    for (rank, n) in result.neighbors.iter().take(5).enumerate() {
        let pos = cand_ids
            .iter()
            .position(|&id| id == n.id)
            .expect("neighbor ids come from the candidate store");
        println!(
            "  #{} compound {:>4}: {:>6.2} | {}",
            rank + 1,
            n.id,
            n.ged,
            exacts[pos]
        );
    }
}
