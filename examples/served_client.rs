//! A scripted client for the `ged-served` daemon: spawns the binary,
//! pipelines a batch of line-delimited JSON requests down its stdin,
//! then reads the response lines back in order — insertions, cached
//! predictions, an edit path, a k-NN query, introspection, and a
//! graceful shutdown (the daemon drains and exits 0).
//!
//! Run with:
//! `cargo build -p ged-server && cargo run --example served_client`
//! (the example execs `ged-served` from the same target directory).

use ot_ged::prelude::*;
use ot_ged::server::protocol::{GraphRef, Request};
use ot_ged::server::{encode_request, parse_response};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

fn main() {
    // The example binary lives in target/<profile>/examples/; the daemon
    // sits one directory up in target/<profile>/.
    let daemon = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .and_then(|p| p.parent())
        .expect("target directory")
        .join("ged-served");
    if !daemon.exists() {
        eprintln!(
            "ged-served not found at {} — build it first:\n  cargo build -p ged-server",
            daemon.display()
        );
        std::process::exit(1);
    }

    let mut child = Command::new(&daemon)
        .args(["--method", "GEDGW", "--threads", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn ged-served");
    let mut stdin = child.stdin.take().expect("daemon stdin");
    let stdout = BufReader::new(child.stdout.take().expect("daemon stdout"));

    // A small molecule-like store plus one query graph.
    let mut rng = SmallRng::seed_from_u64(77);
    let store: Vec<Graph> = GraphDataset::aids_like(4, &mut rng)
        .graphs()
        .cloned()
        .collect();
    let query = store[0].clone();

    // Pipelining: every request is written before any response is read.
    // The daemon answers strictly in order, one line per line.
    let mut requests: Vec<Request> = store
        .iter()
        .enumerate()
        .map(|(i, g)| Request::InsertGraph {
            id: format!("ins{i}"),
            graph: g.clone(),
        })
        .collect();
    requests.push(Request::Predict {
        id: "ged".into(),
        g1: GraphRef::Name("g0".into()),
        g2: GraphRef::Name("g1".into()),
        deadline_ms: None,
    });
    requests.push(Request::EditPath {
        id: "path".into(),
        g1: GraphRef::Name("g0".into()),
        g2: GraphRef::Name("g1".into()),
        k: Some(24),
        deadline_ms: None,
    });
    requests.push(Request::TopK {
        id: "knn".into(),
        query: GraphRef::Inline(query),
        k: 3,
        deadline_ms: None,
    });
    requests.push(Request::RemoveGraph {
        id: "rm".into(),
        name: "g3".into(),
    });
    requests.push(Request::Stats { id: "stats".into() });
    requests.push(Request::Shutdown { id: "bye".into() });

    for req in &requests {
        let line = encode_request(req);
        println!("-> {line}");
        stdin.write_all(line.as_bytes()).expect("write request");
        stdin.write_all(b"\n").expect("write newline");
    }
    stdin.flush().expect("flush requests");

    let mut lines = stdout.lines();
    for req in &requests {
        let line = lines
            .next()
            .expect("one response per request")
            .expect("readable response");
        println!("<- {line}");
        let resp = parse_response(&line).expect("well-formed response");
        assert_eq!(resp.id, req.id(), "responses arrive in request order");
        assert!(resp.is_ok(), "unexpected error: {line}");
    }

    let status = child.wait().expect("daemon exit status");
    println!("\ndaemon exited with {status} (drained and clean)");
    assert!(status.success(), "ged-served must exit 0 after shutdown");
}
