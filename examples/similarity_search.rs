//! Top-k graph similarity search through the [`GedEngine`] query API —
//! the search workload the paper motivates: given a query graph, retrieve
//! the store graphs with the smallest GED, entirely training-free
//! (GEDGW), through the filter–verify plan (precomputed signatures feed
//! the label-set and degree-sequence lower bounds, only survivors reach
//! the solver), and cross-check the ranking against brute-force per-pair
//! evaluation.
//!
//! Run with: `cargo run --release --example similarity_search`

use ot_ged::core::lower_bound::{degree_sequence_lower_bound, label_set_lower_bound};
use ot_ged::core::pairs::GedPair;
use ot_ged::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(2026);

    // A LINUX-like store of 60 unlabeled sparse graphs: every graph gets
    // a stable GraphId and a search signature at insert time.
    let database = GraphDataset::linux_like(60, &mut rng);
    println!(
        "store: {} graphs, stats: {:?}",
        database.len(),
        database.stats()
    );

    // Training-free engine: GEDGW behind the typed query API, parallel
    // over the store through the engine's batch runner.
    let mut registry = SolverRegistry::new();
    registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
    let engine = GedEngine::builder(registry)
        .prediction_cache(4096)
        .build()
        .expect("GEDGW is registered");

    // Query: a fresh graph from the same distribution.
    let query = GraphDataset::linux_like(1, &mut rng)
        .graphs()
        .next()
        .expect("one graph")
        .clone();
    println!(
        "query: {} nodes / {} edges",
        query.num_nodes(),
        query.num_edges()
    );

    // Top-10 most similar graphs, as a typed request/response round trip.
    let response = engine
        .query(GedQuery::TopK {
            query: &query,
            store: &database,
            k: 10,
        })
        .expect("valid query");
    let result = response.into_top_k().expect("TopK yields TopK");

    println!("\ntop-10 most similar graphs (estimated GED):");
    for (rank, n) in result.neighbors.iter().enumerate() {
        println!("  #{:<2} graph {:>4}: {:.3}", rank + 1, n.id, n.ged);
    }
    println!("filter–verify: {}", result.stats);

    // Cross-check: brute-force per-pair evaluation (with the same
    // admissible bound refinement) yields the same ranking while calling
    // the solver on every stored graph.
    let mut brute: Vec<Neighbor> = database
        .iter()
        .map(|(id, g)| {
            let pair = GedPair::new(query.clone(), g.clone());
            let lb = label_set_lower_bound(&query, g).max(degree_sequence_lower_bound(&query, g));
            Neighbor {
                id,
                ged: GedgwSolver.predict(&pair).ged.max(lb as f64),
            }
        })
        .collect();
    brute.sort_by(|a, b| a.ged.total_cmp(&b.ged).then(a.id.cmp(&b.id)));
    for (n, want) in result.neighbors.iter().zip(&brute) {
        assert_eq!(n.id, want.id);
        assert_eq!(n.ged.to_bits(), want.ged.to_bits());
    }
    println!(
        "\nranking verified against brute-force pairwise evaluation ✓ \
         ({} solver calls instead of {})",
        result.stats.verified,
        database.len()
    );

    // A pairwise distance matrix over a slice of the store — the
    // building block for clustering / kNN-graph workloads.
    let subset = GraphStore::from_graphs(database.graphs().take(8).cloned());
    let matrix = engine.distance_matrix(&subset).expect("non-empty subset");
    println!(
        "\npairwise distances over the first {} graphs:",
        matrix.size()
    );
    for i in 0..matrix.size() {
        let row: Vec<String> = matrix.row(i).iter().map(|d| format!("{d:5.1}")).collect();
        println!("  [{}]", row.join(" "));
    }
}
