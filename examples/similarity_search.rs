//! Top-k graph similarity search through the [`GedEngine`] query API —
//! the search workload the paper motivates: given a query graph, retrieve
//! the database graphs with the smallest GED, entirely training-free
//! (GEDGW), and cross-check the ranking against brute-force per-pair
//! evaluation.
//!
//! Run with: `cargo run --release --example similarity_search`

use ot_ged::core::pairs::GedPair;
use ot_ged::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(2026);

    // A LINUX-like database of 60 unlabeled sparse graphs.
    let database = GraphDataset::linux_like(60, &mut rng);
    println!(
        "database: {} graphs, stats: {:?}",
        database.len(),
        database.stats()
    );

    // Training-free engine: GEDGW behind the typed query API, parallel
    // over the database through the engine's batch runner.
    let mut registry = SolverRegistry::new();
    registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
    let engine = GedEngine::builder(registry)
        .prediction_cache(4096)
        .build()
        .expect("GEDGW is registered");

    // Query: a fresh graph from the same distribution.
    let query = GraphDataset::linux_like(1, &mut rng).graphs[0].clone();
    println!(
        "query: {} nodes / {} edges",
        query.num_nodes(),
        query.num_edges()
    );

    // Top-10 most similar graphs, as a typed request/response round trip.
    let response = engine
        .query(GedQuery::TopK {
            query: &query,
            dataset: &database,
            k: 10,
        })
        .expect("valid query");
    let neighbors = response.into_top_k().expect("TopK yields TopK");

    println!("\ntop-10 most similar graphs (estimated GED):");
    for (rank, n) in neighbors.iter().enumerate() {
        println!("  #{:<2} graph {:>3}: {:.3}", rank + 1, n.index, n.ged);
    }

    // Cross-check: brute-force per-pair evaluation yields the same ranking.
    let mut brute: Vec<(usize, f64)> = database
        .graphs
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let pair = GedPair::new(query.clone(), g.clone());
            (i, GedgwSolver.predict(&pair).ged)
        })
        .collect();
    brute.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    for (n, (idx, ged)) in neighbors.iter().zip(&brute) {
        assert_eq!(n.index, *idx);
        assert_eq!(n.ged.to_bits(), ged.to_bits());
    }
    println!("\nranking verified against brute-force pairwise evaluation ✓");

    // A pairwise distance matrix over a slice of the database — the
    // building block for clustering / kNN-graph workloads.
    let subset = GraphDataset {
        kind: database.kind,
        graphs: database.graphs[..8].to_vec(),
    };
    let matrix = engine.distance_matrix(&subset).expect("non-empty subset");
    println!(
        "\npairwise distances over the first {} graphs:",
        matrix.size()
    );
    for i in 0..matrix.size() {
        let row: Vec<String> = matrix.row(i).iter().map(|d| format!("{d:5.1}")).collect();
        println!("  [{}]", row.join(" "));
    }
}
