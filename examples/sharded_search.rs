//! The sharded store tier: one `ShardedStore` partitioned by graph-size
//! bucket, searched with the `*_sharded` engine plans, persisted to disk
//! and restored — answers stay bit-identical to the flat plans
//! throughout.
//!
//! Shards group graphs of similar size, so a single admissible bound per
//! shard (size gap + label-multiset gap of the shard aggregate) can
//! discard whole partitions before any per-graph work:
//!
//! ```text
//! shard tier → pivot tier → signature tier → verify
//! ```
//!
//! Run with: `cargo run --release --example sharded_search`

use ot_ged::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn engine(pivots: usize) -> GedEngine {
    let mut registry = SolverRegistry::new();
    registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
    GedEngine::builder(registry)
        .threads(2)
        .pivots(pivots)
        .build()
        .expect("GEDGW is registered")
}

fn main() {
    // IMDB-like data mixes small ego-nets with much larger ones — the
    // size-bucketed shards spread wide, which is exactly when the shard
    // tier pays off.
    let mut rng = SmallRng::seed_from_u64(4071);
    let flat = GraphDataset::imdb_like(40, 12, &mut rng).into_store();

    // Mirror the flat store into a sharded one (bucket width 4: graphs
    // with 0–3 nodes share shard 0, 4–7 shard 1, ...), remembering the
    // id twin of every graph.
    let mut sharded = ShardedStore::new(4);
    let mut twin = std::collections::BTreeMap::new();
    for (flat_id, graph) in flat.iter() {
        twin.insert(flat_id, sharded.insert(graph.clone()));
    }
    println!(
        "store: {} graphs in {} shards (bucket width {})",
        sharded.len(),
        sharded.shard_count(),
        sharded.bucket_width()
    );

    let query = flat
        .graphs()
        .min_by_key(|g| g.num_nodes())
        .expect("non-empty")
        .clone();
    println!(
        "query: the smallest stored graph ({} nodes)\n",
        query.num_nodes()
    );

    let e = engine(0);

    // Top-k: same neighbors (modulo the id mint), whole shards skipped.
    let flat_k = e.top_k(&query, &flat, 5).expect("valid");
    let shrd_k = e.top_k_sharded(&query, &sharded, 5).expect("valid");
    assert_eq!(flat_k.neighbors.len(), shrd_k.neighbors.len());
    for (f, s) in flat_k.neighbors.iter().zip(&shrd_k.neighbors) {
        assert_eq!(twin[&f.id], s.id, "same neighbor under the id mapping");
        assert!((f.ged - s.ged).abs() == 0.0, "bit-identical estimate");
    }
    println!("TopK(5)   flat: {}", flat_k.stats);
    println!("TopK(5) shard: {}", shrd_k.stats);
    assert!(shrd_k.stats.pruned_shard > 0, "whole shards must drop");
    // Shard-pruned graphs never reach the per-candidate tiers, so the
    // per-graph filter does strictly less work than the flat plan's.
    let flat_visits = flat_k.stats.candidates;
    let sharded_visits = shrd_k.stats.candidates - shrd_k.stats.pruned_shard;
    assert!(
        sharded_visits < flat_visits,
        "shard tier must cut per-graph candidate visits"
    );
    println!(
        "per-graph candidate visits: {flat_visits} → {sharded_visits} \
         (identical answers)\n"
    );

    // Exact range search under the same contract.
    let flat_x = e.range_exact(&query, &flat, 2.0).expect("valid");
    let shrd_x = e.range_exact_sharded(&query, &sharded, 2.0).expect("valid");
    assert_eq!(flat_x.matches.len(), shrd_x.matches.len());
    for (f, s) in flat_x.matches.iter().zip(&shrd_x.matches) {
        assert_eq!(twin[&f.id], s.id);
        assert_eq!(f.ged, s.ged, "exact values agree");
    }
    println!("RangeExact(2)   flat: {}", flat_x.stats);
    println!("RangeExact(2) shard: {}", shrd_x.stats);
    assert!(shrd_x.stats.pruned_shard > 0);
    assert_eq!(shrd_x.stats.total(), sharded.len(), "accounting closes");

    // Persistence: save, reload, re-arm pivots, same answers.
    let e = engine(3);
    e.sync_sharded_pivots(&mut sharded);
    let dir = std::env::temp_dir().join("ot_ged_sharded_search_example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("store.snapshot.json");
    sharded.save(&path).expect("snapshot written");
    let mut restored = ShardedStore::load(&path).expect("snapshot read");
    std::fs::remove_file(&path).ok();
    e.sync_sharded_pivots(&mut restored); // O(1): revisions carried over
    assert!(restored.pivots_ready(3), "pivot tables restored in-sync");

    let before = e.top_k_sharded(&query, &sharded, 5).expect("valid");
    let after = e.top_k_sharded(&query, &restored, 5).expect("valid");
    assert_eq!(
        before.neighbors, after.neighbors,
        "answers survive the disk"
    );
    println!(
        "\nsnapshot round-trip: {} graphs, revision {}, answers bit-identical ✓",
        restored.len(),
        restored.revision()
    );
}
