//! Exact range search: retrieve every store graph whose **exact** GED to
//! a query is ≤ τ — the paper's headline threshold workload (Section 2) —
//! via the engine's three-tier filter–prune–verify plan:
//!
//! 1. signature-fed label-set / degree-sequence lower bounds *discard*,
//! 2. the feasible GEDGW best-matching-rounding upper bound *accepts*
//!    without τ-bounded search,
//! 3. survivors run the τ-bounded exact A* in parallel, each capped by
//!    the engine's verify budget.
//!
//! Also shows the τ = ∞ degradation to plain exact GED computation and
//! how a tiny budget surfaces undecided candidates per id instead of
//! stalling the whole query.
//!
//! Run with: `cargo run --release --example exact_range_search`

use ot_ged::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(2028);

    // An AIDS-like compound store; rich labels make the filter tier bite.
    let store = GraphDataset::aids_like(80, &mut rng).into_store();
    let query = store.graphs().next().expect("non-empty").clone();
    println!("store: {} compounds", store.len());
    println!(
        "query: {} nodes / {} edges (a member of the store)\n",
        query.num_nodes(),
        query.num_edges()
    );

    // Exact search never consults a solver, but the engine still wants a
    // registry for its approximate queries.
    let mut registry = SolverRegistry::new();
    registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
    let engine = GedEngine::builder(registry)
        .build()
        .expect("GEDGW is registered");

    println!(
        "{:>5} {:>8} {:>9} {:>15} {:>9} {:>7}",
        "tau", "matches", "filtered", "accepted-early", "verified", "budget"
    );
    for tau in [1.0, 2.0, 4.0, 6.0] {
        let result = engine
            .query(GedQuery::RangeExact {
                query: &query,
                store: &store,
                tau,
            })
            .expect("valid query")
            .into_range_exact()
            .expect("RangeExact yields RangeExact");
        println!(
            "{tau:>5} {:>8} {:>9} {:>15} {:>9} {:>7}",
            result.matches.len(),
            result.stats.filtered,
            result.stats.accepted_early,
            result.stats.verified,
            result.stats.budget_exceeded,
        );
    }

    // Matches carry exact distances, in deterministic id order.
    let result = engine
        .range_exact(&query, &store, 4.0)
        .expect("valid query");
    println!("\nexact matches within GED ≤ 4:");
    for m in &result.matches {
        println!("  graph {:>5}: exact GED {}", m.id, m.ged);
    }

    // Every reported distance is provably exact: re-check against the
    // τ-bounded exact search directly.
    for m in &result.matches {
        let direct = bounded_exact_ged(&query, &store[m.id], 4).expect("must match");
        assert_eq!(direct, m.ged);
    }
    println!("distances re-verified against bounded exact search ✓");

    // τ = ∞ degrades to exact GED computation over the whole store —
    // demonstrated on a slice so the unbounded searches stay tiny.
    let slice = GraphStore::from_graphs(store.graphs().take(12).cloned());
    let all = engine
        .range_exact(&query, &slice, f64::INFINITY)
        .expect("valid query");
    println!(
        "\nτ = ∞ over a {}-graph slice: {} matches (full exact scan, {} filtered)",
        slice.len(),
        all.matches.len(),
        all.stats.filtered
    );

    // A deliberately strangled budget: pathological candidates surface
    // per id as `budget_exhausted` instead of poisoning the query.
    let mut registry = SolverRegistry::new();
    registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
    let strangled = GedEngine::builder(registry)
        .verify_budget(2)
        .build()
        .expect("valid configuration");
    let partial = strangled
        .range_exact(&query, &store, 4.0)
        .expect("budget exhaustion is not an error");
    let proven = partial
        .budget_exhausted
        .iter()
        .filter(|u| u.known_match_ub.is_some())
        .count();
    println!(
        "\nwith a 2-expansion verify budget: {} decided matches, {} unresolved candidate(s) \
         ({proven} with membership already proven by the upper bound)",
        partial.matches.len(),
        partial.budget_exhausted.len()
    );

    // Misuse stays a typed error.
    let err = strangled.range_exact(&query, &store, f64::NAN).unwrap_err();
    println!("NaN threshold: {err}");
}
