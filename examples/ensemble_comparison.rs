//! Head-to-head comparison of all methods on ego-network (IMDB-style)
//! graphs — the regime where the paper shows unsupervised GEDGW is the
//! most robust and the GEDHOT ensemble combines the best of both worlds.
//!
//! Run with: `cargo run --release --example ensemble_comparison`

use ot_ged::baselines::astar::astar_beam;
use ot_ged::core::pairs::GedPair;
use ot_ged::eval::metrics::{accuracy, feasibility, mae, PairOutcome};
use ot_ged::graph::generate::{ego_net, perturb_with_edits};
use ot_ged::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = SmallRng::seed_from_u64(99);

    // Training pairs: perturbed ego-nets with known edit counts (the
    // ground-truth technique the paper uses for graphs > 10 nodes).
    let train_pairs: Vec<GedPair> = (0..60)
        .map(|_| {
            let n = rng.gen_range(8..=16);
            let g = ego_net(n, 1 + n / 6, &mut rng);
            let delta = 1 + rng.gen_range(0..8);
            let p = perturb_with_edits(&g, delta, 1, &mut rng);
            GedPair::supervised(g, p.graph, p.applied as f64, p.mapping)
        })
        .collect();

    println!("training GEDIOT on {} ego-net pairs ...", train_pairs.len());
    let mut model = Gediot::new(GediotConfig::small(1), &mut rng);
    model.train(&train_pairs, 12, &mut rng);

    // Held-out pairs.
    let test_pairs: Vec<GedPair> = (0..40)
        .map(|_| {
            let n = rng.gen_range(8..=16);
            let g = ego_net(n, 1 + n / 6, &mut rng);
            let delta = 1 + rng.gen_range(0..8);
            let p = perturb_with_edits(&g, delta, 1, &mut rng);
            GedPair::supervised(g, p.graph, p.applied as f64, p.mapping)
        })
        .collect();

    let ensemble = Gedhot::new(&model);
    let mut rows: Vec<(&str, Vec<PairOutcome>)> = Vec::new();
    let collect = |f: &dyn Fn(&GedPair) -> f64| -> Vec<PairOutcome> {
        test_pairs
            .iter()
            .map(|p| PairOutcome {
                pred: f(p),
                gt: p.ged.unwrap(),
            })
            .collect()
    };
    rows.push(("GEDIOT", collect(&|p| model.predict(&p.g1, &p.g2).ged)));
    rows.push(("GEDGW", collect(&|p| Gedgw::new(&p.g1, &p.g2).solve().ged)));
    rows.push(("GEDHOT", collect(&|p| ensemble.predict(&p.g1, &p.g2).ged)));
    rows.push((
        "Classic",
        collect(&|p| classic_ged(&p.g1, &p.g2).ged as f64),
    ));
    rows.push((
        "A*-Beam",
        collect(&|p| astar_beam(&p.g1, &p.g2, 50).ged as f64),
    ));

    println!(
        "\n{:<9} {:>7} {:>10} {:>12}",
        "method", "MAE", "accuracy", "feasibility"
    );
    for (name, outcomes) in &rows {
        println!(
            "{:<9} {:>7.3} {:>9.1}% {:>11.1}%",
            name,
            mae(outcomes),
            accuracy(outcomes) * 100.0,
            feasibility(outcomes) * 100.0
        );
    }
    println!("\n(GEDHOT takes the min of GEDIOT and GEDGW per pair — Section 5.2)");
}
