//! Range similarity search: retrieve every store graph within GED ≤ τ of
//! a query — the threshold workload of classic GED search systems — via
//! the engine's filter–verify plan, then shrink τ and watch the filter
//! tiers discard more candidates before any solver call.
//!
//! Also demonstrates that a [`GraphStore`] is a live collection:
//! inserting and removing graphs between queries just works, with stable
//! ids, and misuse (a removed id, an empty store) surfaces as typed
//! [`GedError`]s instead of panics.
//!
//! Run with: `cargo run --release --example range_search`

use ot_ged::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(2027);

    // An AIDS-like compound store; labels make the label-set bound bite.
    let mut store = GraphDataset::aids_like(80, &mut rng).into_store();
    println!("store: {} compounds", store.len());

    let mut registry = SolverRegistry::new();
    registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
    let engine = GedEngine::builder(registry)
        .build()
        .expect("GEDGW is registered");

    let query = GraphDataset::aids_like(1, &mut rng)
        .graphs()
        .next()
        .expect("one graph")
        .clone();
    println!(
        "query: {} nodes / {} edges\n",
        query.num_nodes(),
        query.num_edges()
    );

    println!(
        "{:>5} {:>8} {:>13} {:>14} {:>9}",
        "tau", "matches", "pruned:label", "pruned:degree", "verified"
    );
    for tau in [12.0, 8.0, 5.0, 3.0] {
        let result = engine
            .query(GedQuery::Range {
                query: &query,
                store: &store,
                tau,
            })
            .expect("valid query")
            .into_range()
            .expect("Range yields Range");
        println!(
            "{tau:>5} {:>8} {:>13} {:>14} {:>9}",
            result.neighbors.len(),
            result.stats.pruned_label,
            result.stats.pruned_degree,
            result.stats.verified
        );
    }

    // The store is incremental: drop the best match and search again.
    let best = engine
        .range(&query, &store, 12.0)
        .expect("valid query")
        .neighbors[0];
    println!("\nclosest compound: {} at GED {:.3}", best.id, best.ged);
    store.remove(best.id);
    let rerun = engine.range(&query, &store, 12.0).expect("valid query");
    assert!(rerun.neighbors.iter().all(|n| n.id != best.id));
    println!(
        "after removing it, the closest is {} at GED {:.3}",
        rerun.neighbors[0].id, rerun.neighbors[0].ged
    );

    // Misuse is a typed error, never a panic.
    let err = engine.top_k_by_id(&store, best.id, 3).unwrap_err();
    println!("querying by the removed id: {err}");
    let err = engine.range(&query, &GraphStore::new(), 5.0).unwrap_err();
    println!("range over an empty store:  {err}");
}
