//! Quickstart: answer GED queries for the paper's Figure 1 pair through
//! the [`GedEngine`] query API — value estimates, a concrete edit path,
//! method selection, and typed error handling — then cross-check against
//! exact A*.
//!
//! Run with: `cargo run --release --example quickstart`

use ot_ged::baselines::solvers::ClassicSolver;
use ot_ged::prelude::*;

fn main() {
    // Figure 1 of the paper: G1 is a labeled triangle, G2 adds a node and
    // rewires an edge. Exact GED = 4.
    let g1 = Graph::from_edges(
        vec![Label(1), Label(1), Label(2)],
        &[(0, 1), (0, 2), (1, 2)],
    );
    let g2 = Graph::from_edges(
        vec![Label(1), Label(1), Label(3), Label(4)],
        &[(0, 1), (0, 2), (2, 3)],
    );

    println!("G1: {} nodes / {} edges", g1.num_nodes(), g1.num_edges());
    println!("G2: {} nodes / {} edges", g2.num_nodes(), g2.num_edges());

    // Build an engine over the training-free methods. Method kinds are
    // typed — a CLI would parse them with `"gedgw".parse::<MethodKind>()`.
    let mut registry = SolverRegistry::new();
    registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
    registry.register(MethodKind::Classic, Box::new(ClassicSolver));
    let engine = GedEngine::builder(registry)
        .method(MethodKind::Gedgw)
        .beam_width(20)
        .build()
        .expect("GEDGW is registered");

    // 1. Exact GED via A* for reference (fine for graphs up to ~10 nodes).
    let exact = astar_exact(&g1, &g2);
    println!("\nExact A*:        GED = {}", exact.ged);

    // 2. Unsupervised optimal-transport estimate (GEDGW, Section 5).
    let estimate = engine.ged(&g1, &g2).expect("non-empty inputs");
    println!("GEDGW estimate:  {estimate}");

    // 3. A feasible edit path via the k-best matching framework on the
    //    GEDGW coupling (Section 4.5).
    let path = engine.edit_path(&g1, &g2).expect("GEDGW generates paths");
    println!("GEDGW + k-best:  {path}");
    println!("\nEdit path transforming G1 into G2:");
    for (i, op) in path.ops.iter().enumerate() {
        println!("  {}. {:?}", i + 1, op);
    }

    // Verify end-to-end: the mapping the engine returned realizes an
    // edit path that really produces G2 (up to isomorphism).
    let applied = path
        .mapping
        .edit_path(&g1, &g2)
        .apply(&g1)
        .expect("path must be applicable");
    assert!(ot_ged::graph::isomorphism::are_isomorphic(&applied, &g2));
    println!("\nPath verified: applying it to G1 yields a graph isomorphic to G2.");

    // 4. Method selection: the classical baseline through the same engine.
    let classic = engine
        .ged_as(MethodKind::Classic, &g1, &g2)
        .expect("Classic is registered");
    println!("\nClassic (Hungarian/VJ): {classic}");

    // 5. Errors are typed, not panics: an unregistered method and an
    //    empty input graph both come back as `GedError`.
    let err = engine.ged_as(MethodKind::Gediot, &g1, &g2).unwrap_err();
    println!("\nquerying an unregistered method: {err}");
    let err = engine.ged(&Graph::new(), &g2).unwrap_err();
    println!("querying an empty graph:        {err}");
}
