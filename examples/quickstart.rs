//! Quickstart: compute the GED of the paper's Figure 1 pair three ways —
//! exactly (A*), unsupervised (GEDGW), and classically (Hungarian/VJ) —
//! and generate a concrete edit path.
//!
//! Run with: `cargo run --release --example quickstart`

use ot_ged::prelude::*;

fn main() {
    // Figure 1 of the paper: G1 is a labeled triangle, G2 adds a node and
    // rewires an edge. Exact GED = 4.
    let g1 = Graph::from_edges(
        vec![Label(1), Label(1), Label(2)],
        &[(0, 1), (0, 2), (1, 2)],
    );
    let g2 = Graph::from_edges(
        vec![Label(1), Label(1), Label(3), Label(4)],
        &[(0, 1), (0, 2), (2, 3)],
    );

    println!("G1: {} nodes / {} edges", g1.num_nodes(), g1.num_edges());
    println!("G2: {} nodes / {} edges", g2.num_nodes(), g2.num_edges());

    // 1. Exact GED via A* (fine for graphs up to ~10 nodes).
    let exact = astar_exact(&g1, &g2);
    println!("\nExact A*:        GED = {}", exact.ged);

    // 2. Unsupervised optimal-transport estimate (GEDGW, Section 5).
    let gw = Gedgw::new(&g1, &g2).solve();
    println!("GEDGW objective: GED ≈ {:.3}", gw.ged);

    // 3. A feasible edit path via the k-best matching framework on the
    //    GEDGW coupling (Section 4.5).
    let path = kbest_edit_path(&g1, &g2, &gw.coupling, 20);
    println!("GEDGW + k-best:  GED = {} (feasible path)", path.ged);
    println!("\nEdit path transforming G1 into G2:");
    for (i, op) in path.path.ops().iter().enumerate() {
        println!("  {}. {:?}", i + 1, op);
    }

    // Verify: applying the path really produces G2 (up to isomorphism).
    let result = path.path.apply(&g1).expect("path must be applicable");
    assert!(ot_ged::graph::isomorphism::are_isomorphic(&result, &g2));
    println!("\nPath verified: applying it to G1 yields a graph isomorphic to G2.");

    // 4. Classical baseline for comparison.
    let classic = classic_ged(&g1, &g2);
    println!("Classic (Hungarian/VJ): GED = {}", classic.ged);
}
