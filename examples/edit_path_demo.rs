//! Edit-path generation on program-dependence-like (LINUX-style,
//! unlabeled) graphs: perturb a graph with a known number of edits, then
//! recover an edit path of exactly that length from the GEDGW coupling via
//! the k-best matching framework — without any training.
//!
//! Run with: `cargo run --release --example edit_path_demo`

use ot_ged::graph::generate::{perturb_with_edits, random_connected_unlabeled};
use ot_ged::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(7);

    let original = random_connected_unlabeled(9, 3, &mut rng);
    let perturbed = perturb_with_edits(&original, 4, 1, &mut rng);
    println!(
        "original:  {} nodes / {} edges",
        original.num_nodes(),
        original.num_edges()
    );
    println!(
        "perturbed: {} nodes / {} edges ({} edits applied)",
        perturbed.graph.num_nodes(),
        perturbed.graph.num_edges(),
        perturbed.applied
    );

    // Unsupervised solve + path generation.
    let (solve, path) = Gedgw::new(&original, &perturbed.graph).solve_with_path(50);
    println!("\nGEDGW objective: {:.3}", solve.ged);
    println!("k-best path length (feasible GED): {}", path.ged);
    println!(
        "exact GED (A*): {}",
        astar_exact(&original, &perturbed.graph).ged
    );

    println!("\nrecovered edit path:");
    for (i, op) in path.path.ops().iter().enumerate() {
        println!("  {}. {:?}", i + 1, op);
    }

    let rebuilt = path.path.apply(&original).expect("applicable path");
    assert!(ot_ged::graph::isomorphism::are_isomorphic(
        &rebuilt,
        &perturbed.graph
    ));
    println!("\nverified: the path transforms the original into the perturbed graph.");

    // Compare against the classical baseline on the same pair.
    let classic = classic_ged(&original, &perturbed.graph);
    println!("classic (Hungarian/VJ) path length: {}", classic.ged);
}
