//! Triangle-inequality pivot pruning: the same store queries with and
//! without a pivot index (`GedEngineBuilder::pivots`), side by side.
//!
//! GED is a metric, so exact distances to a few reference graphs bound
//! every query–candidate distance for free:
//!
//! ```text
//! max_i |d(q,p_i) − d(p_i,g)|  ≤  GED(q,g)  ≤  min_i d(q,p_i) + d(p_i,g)
//! ```
//!
//! The engine materializes the `p × n` pivot table once (kept in sync
//! with the store incrementally), spends `p` distance computations per
//! query, and wires the derived bounds in as an extra tier of every
//! store plan: `RangeExact` discards by pivot lb before the signature
//! bounds and accepts by pivot ub before the GEDGW bound; `TopK`/`Range`
//! prune by pivot lb and clamp estimates into `[lb, ub]`.
//!
//! Run with: `cargo run --release --example pivot_search`

use ot_ged::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn engine(pivots: usize) -> GedEngine {
    let mut registry = SolverRegistry::new();
    registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
    GedEngine::builder(registry)
        .threads(1)
        .pivots(pivots)
        .build()
        .expect("GEDGW is registered")
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(2029);
    let store = GraphDataset::aids_like(60, &mut rng).into_store();
    let query = store.graphs().next().expect("non-empty").clone();
    println!("store: {} compounds; query: a member\n", store.len());

    let plain = engine(0);
    let pivoted = engine(4);
    let pivots = pivoted.pivot_ids(&store);
    println!(
        "pivots (farthest-point selection): {}",
        pivots
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );

    // The derived bounds sandwich the exact GED for every stored graph.
    let bounds = pivoted
        .pivot_bounds(&query, &store)
        .expect("pivots enabled");
    let exact_rows = bounds.values().filter(|(lb, ub)| lb == ub).count();
    println!(
        "per-candidate bounds derived from {} query-to-pivot distances ({exact_rows}/{} already exact)\n",
        pivots.len(),
        bounds.len()
    );

    // Exact range search: identical answers, fewer τ-bounded searches.
    println!("RangeExact, pivot tier off vs on (identical matches):");
    println!(
        "{:>5} {:>8} | {:>9} {:>15} {:>9} | {:>7} {:>9} {:>7} {:>15} {:>9}",
        "tau",
        "matches",
        "filtered",
        "accepted-early",
        "verified",
        "pr-piv",
        "filtered",
        "ac-piv",
        "accepted-early",
        "verified"
    );
    let mut total_with = 0usize;
    let mut total_without = 0usize;
    for tau in [1.0, 2.0, 4.0, 6.0] {
        let off = plain.range_exact(&query, &store, tau).expect("valid");
        let on = pivoted.range_exact(&query, &store, tau).expect("valid");
        assert_eq!(
            off.matches, on.matches,
            "pivot tier must not change results"
        );
        assert_eq!(on.stats.total(), store.len(), "accounting closes");
        println!(
            "{tau:>5} {:>8} | {:>9} {:>15} {:>9} | {:>7} {:>9} {:>7} {:>15} {:>9}",
            on.matches.len(),
            off.stats.filtered,
            off.stats.accepted_early,
            off.stats.verified,
            on.stats.pruned_pivot,
            on.stats.filtered,
            on.stats.accepted_pivot,
            on.stats.accepted_early,
            on.stats.verified,
        );
        total_without += off.stats.verified;
        total_with += on.stats.verified;
    }
    assert!(
        total_with < total_without,
        "pivots must strictly reduce τ-bounded verifications"
    );
    println!(
        "\nτ-bounded exact searches across the sweep: {total_without} → {total_with} \
         (strictly fewer, same answers)\n"
    );

    // Approximate top-k: the pivot lower bound joins the filter phase and
    // the [lb, ub] clamp tightens the reported estimates.
    let off = plain.top_k(&query, &store, 5).expect("valid");
    let on = pivoted.top_k(&query, &store, 5).expect("valid");
    println!(
        "TopK(5) solver invocations: {} → {}",
        off.stats.verified, on.stats.verified
    );
    println!(
        "  pruned per tier with pivots: label {} / degree {} / pivot {}",
        on.stats.pruned_label, on.stats.pruned_degree, on.stats.pruned_pivot
    );
    assert!(
        on.stats.verified < off.stats.verified,
        "pivot pruning must save solver calls on this workload"
    );
    assert!(on.stats.pruned_pivot > 0, "the pivot tier must fire");

    // The store stays live: dropping a pivot forces reselection, and the
    // exact plan keeps answering identically to a fresh engine.
    let mut store = store;
    let victim = pivots[0];
    store.remove(victim);
    let after = pivoted.range_exact(&query, &store, 4.0).expect("valid");
    let fresh = engine(4).range_exact(&query, &store, 4.0).expect("valid");
    assert_eq!(after.matches, fresh.matches);
    println!(
        "\nremoved pivot {victim}; index reselected {} pivots and still matches a fresh build ✓",
        pivoted.pivot_ids(&store).len()
    );
}
