//! Dataset-scale GED joins: the τ-similarity self-join over one store
//! and the cross-store join between two, executed as first-class engine
//! plans instead of `n·(n−1)/2` (resp. `n·m`) independent queries.
//!
//! The join plan shares work across the whole candidate matrix:
//!
//! ```text
//! block tier (shard×shard / size-range gap, whole blocks by arithmetic)
//!   → band tier (signature-sort order, contiguous size bands)
//!     → signature lower bounds → pivot triangle bounds → dedup cache
//!       → upper-bound accepts → τ-bounded exact verification
//! ```
//!
//! Every tier is exact or admissible, so this example asserts the
//! contract end-to-end: answers bit-identical to the brute-force nested
//! loop, strictly fewer verifications than the nested loop performs,
//! `JoinStats` accounting that closes to the exact pair count, and a
//! sharded plan that prunes whole blocks while staying bit-identical to
//! the flat plan.
//!
//! Run with: `cargo run --release --example join_search`

use ot_ged::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

fn engine(pivots: usize) -> GedEngine {
    let mut registry = SolverRegistry::new();
    registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
    GedEngine::builder(registry)
        .threads(2)
        .pivots(pivots)
        .build()
        .expect("GEDGW is registered")
}

/// The nested-loop ground truth: a τ-bounded exact search on every
/// ordered candidate pair, one pair at a time, no shared work.
fn nested_loop(pairs: &[(GraphId, &Graph, GraphId, &Graph)], tau: usize) -> Vec<JoinPair> {
    pairs
        .iter()
        .filter_map(|&(a, ga, b, gb)| {
            bounded_exact_ged(ga, gb, tau).map(|ged| JoinPair { a, b, ged })
        })
        .collect()
}

fn main() {
    // AIDS-like molecules: many near-duplicates, so a small τ already
    // yields a non-trivial join.
    let mut rng = SmallRng::seed_from_u64(4083);
    let store = GraphDataset::aids_like(48, &mut rng).into_store();
    let tau = 2usize;
    let n = store.len();
    let nested_pairs = n * (n - 1) / 2;

    // Ground truth: the brute-force nested loop over all unordered pairs.
    let entries: Vec<(GraphId, &Graph)> = store.iter().collect();
    let mut product = Vec::new();
    for (i, &(a, ga)) in entries.iter().enumerate() {
        for &(b, gb) in &entries[i + 1..] {
            product.push((a, ga, b, gb));
        }
    }
    let oracle = nested_loop(&product, tau);
    println!(
        "self-join: {n} graphs, τ = {tau} → {} matching pairs \
         (nested loop verifies all {nested_pairs})",
        oracle.len()
    );

    // The flat self-join plan: identical answer, closed accounting,
    // strictly fewer verifications than the nested loop's `n·(n−1)/2`.
    let e = engine(3);
    let flat = e.self_join(&store, tau as f64).expect("valid join");
    assert_eq!(flat.pairs, oracle, "bit-identical to the nested loop");
    assert!(
        flat.budget_exhausted.is_empty(),
        "unlimited budget decides all"
    );
    assert_eq!(flat.stats.total(), nested_pairs, "accounting closes");
    assert!(
        flat.stats.verified < nested_pairs,
        "shared-work plan must verify strictly fewer pairs"
    );
    println!("  flat : {}", flat.stats);

    // The sharded self-join, on size-spread IMDB-like data (small
    // ego-nets next to much larger ones — AIDS-like stores are too
    // uniform for shard-level gaps at this τ): whole shard×shard blocks
    // discarded by one aggregate bound, answers still bit-identical to
    // the flat plan (modulo the id mint).
    let wide = GraphDataset::imdb_like(40, 12, &mut rng).into_store();
    let wide_pairs = wide.len() * (wide.len() - 1) / 2;
    let mut sharded = ShardedStore::new(4);
    let mut twin = BTreeMap::new();
    for (flat_id, graph) in wide.iter() {
        twin.insert(flat_id, sharded.insert(graph.clone()));
    }
    e.sync_sharded_pivots(&mut sharded);
    let wide_flat = e.self_join(&wide, tau as f64).expect("valid join");
    let shrd = e
        .self_join_sharded(&sharded, tau as f64)
        .expect("valid join");
    assert_eq!(shrd.pairs.len(), wide_flat.pairs.len());
    for (f, s) in wide_flat.pairs.iter().zip(&shrd.pairs) {
        assert_eq!((twin[&f.a], twin[&f.b], f.ged), (s.a, s.b, s.ged));
    }
    assert_eq!(shrd.stats.total(), wide_pairs);
    assert!(shrd.stats.pruned_block > 0, "whole blocks must drop");
    println!(
        "\nsharded self-join: {} graphs in {} shards, τ = {tau} → {} pairs",
        sharded.len(),
        sharded.shard_count(),
        shrd.pairs.len()
    );
    println!("  shard: {}", shrd.stats);

    // The cross-store join: a probe set against the store — half fresh
    // molecules, half re-submissions of stored ones (the typical
    // dedup-on-ingest workload) — all `n·m` ordered pairs accounted,
    // same contract.
    let resubmitted = store.graphs().take(6).cloned();
    let fresh = GraphDataset::aids_like(6, &mut rng).into_store();
    let probes = GraphStore::from_graphs(fresh.graphs().cloned().chain(resubmitted));
    let cross_pairs = probes.len() * n;
    let mut product = Vec::new();
    for (a, ga) in probes.iter() {
        for (b, gb) in store.iter() {
            product.push((a, ga, b, gb));
        }
    }
    let oracle = nested_loop(&product, tau);
    let cross = e.join(&probes, &store, tau as f64).expect("valid join");
    assert_eq!(cross.pairs, oracle, "bit-identical to the nested loop");
    assert_eq!(cross.stats.total(), cross_pairs, "accounting closes");
    assert!(cross.stats.verified < cross_pairs);
    println!(
        "\ncross-join: {} probes × {n} stored, τ = {tau} → {} pairs",
        probes.len(),
        cross.pairs.len()
    );
    println!("  cross: {}", cross.stats);

    let saved = nested_pairs + cross_pairs - flat.stats.verified - cross.stats.verified;
    println!(
        "\n{saved} of {} τ-bounded verifications avoided, answers bit-identical ✓",
        nested_pairs + cross_pairs
    );
}
