//! # ot-ged — Approximate Graph Edit Distance via Optimal Transport
//!
//! A Rust reproduction of *"Computing Approximate Graph Edit Distance via
//! Optimal Transport"* (SIGMOD 2025): the supervised **GEDIOT** model
//! (inverse optimal transport with a learnable Sinkhorn layer), the
//! unsupervised **GEDGW** solver (optimal transport + Gromov–Wasserstein
//! discrepancy via conditional gradient), and the **GEDHOT** ensemble,
//! together with classical and neural baselines, exact A* ground truth,
//! edit-path generation via k-best bipartite matching, and a full
//! experiment harness.
//!
//! This crate is a facade that re-exports the workspace's public API.
//!
//! ## Quickstart: the query engine
//!
//! All dispatch goes through [`core::engine::GedEngine`] — a typed
//! request/response API with method selection and a unified error type:
//!
//! ```
//! use ot_ged::prelude::*;
//!
//! // Two labeled graphs (Figure 1 of the paper).
//! let g1 = Graph::from_edges(vec![Label(1), Label(1), Label(2)],
//!                            &[(0, 1), (0, 2), (1, 2)]);
//! let g2 = Graph::from_edges(vec![Label(1), Label(1), Label(3), Label(4)],
//!                            &[(0, 1), (0, 2), (2, 3)]);
//!
//! // An engine over the training-free GEDGW solver.
//! let mut registry = SolverRegistry::new();
//! registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
//! let engine = GedEngine::builder(registry).build().unwrap();
//!
//! // Value estimate and a feasible edit path, no panics on bad input:
//! let estimate = engine.ged(&g1, &g2).unwrap();
//! assert!(estimate.ged >= 2.0); // exact GED of this pair is 4
//! let path = engine.edit_path(&g1, &g2).unwrap();
//! assert!(path.ged >= 4); // feasible paths upper-bound the true GED
//! assert!(engine.ged(&Graph::new(), &g2).is_err()); // empty graph
//!
//! // Exact GED for reference (A*, small graphs only):
//! let exact = astar_exact(&g1, &g2);
//! assert_eq!(exact.ged, 4);
//! ```

pub use ged_baselines as baselines;
pub use ged_core as core;
pub use ged_eval as eval;
pub use ged_experiments as experiments;
pub use ged_graph as graph;
pub use ged_linalg as linalg;
pub use ged_nn as nn;
pub use ged_ot as ot;
pub use ged_server as server;

/// Convenient glob-import surface covering the common workflow.
pub mod prelude {
    pub use ged_baselines::astar::{astar_beam, astar_exact};
    pub use ged_baselines::classic::{classic_ged, hungarian_ged, vj_ged};
    pub use ged_core::engine::{
        Deadline, DeadlineBound, DistanceMatrix, ExactNeighbor, GedEngine, GedEngineBuilder,
        GedQuery, GedResponse, JoinPair, JoinResult, Neighbor, RangeExactResult, SearchResult,
        SearchStats, UndecidedCandidate, UndecidedPair,
    };
    pub use ged_core::ensemble::Gedhot;
    pub use ged_core::error::GedError;
    pub use ged_core::gedgw::Gedgw;
    pub use ged_core::gediot::{Gediot, GediotConfig};
    pub use ged_core::kbest::kbest_edit_path;
    pub use ged_core::method::MethodKind;
    pub use ged_core::plan::{
        FilterTier, PlanExplanation, PlannerCounters, QueryPlanner, QueryShape,
    };
    pub use ged_core::search::{
        bounded_exact_ged, bounded_exact_ged_with_budget, pivot_distance, BoundedSearch,
        ExactSearchStats, JoinStats,
    };
    pub use ged_core::solver::{
        BatchRunner, GedEstimate, GedSolver, GedgwSolver, PathEstimate, SolverRegistry,
    };
    pub use ged_eval::metrics;
    pub use ged_graph::{
        max_edit_ops, normalized_ged, DatasetKind, EditOp, EditPath, Graph, GraphDataset, GraphId,
        GraphSignature, GraphStore, Label, NodeMapping, PivotDistance, PivotIndex, Shard,
        ShardedStore, Split,
    };
}
